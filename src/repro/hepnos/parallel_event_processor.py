"""ParallelEventProcessor: load-balanced parallel event iteration.

The PEP (paper section II-D) lets a group of MPI ranks iterate the
events of a dataset cooperatively:

- a subset of ranks become **readers** (typically as many readers as
  event databases).  Each reader owns a disjoint set of event databases
  and streams their events in *input batches* (default 16384 events --
  few RPCs, large transfers), prefetching requested products with
  batched ``get_multi`` calls;
- readers chop input batches into *dispatch batches* (default 64
  events -- fine-grained load balancing) and serve them to worker ranks
  on demand through a pull protocol;
- every event is delivered exactly once; workers invoke the
  user-supplied callable on each event.

With one rank (or ``comm=None``) the PEP degrades to sequential
prefetched iteration, which is also the mode ingest validation uses.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

from repro.errors import HEPnOSError, ProductNotFound
from repro.faults.retry import RETRYABLE_ERRORS
from repro.hepnos import keys as hkeys
from repro.hepnos.column_block import EventBatch
from repro.hepnos.connection import DbTarget
from repro.hepnos.options import PEPOptions, resolve_options
from repro.hepnos.product import product_type_name
from repro.monitor import tracing as _tracing

_TAG_REQUEST = 101
_TAG_REPLY = 102


@dataclass
class PEPStatistics:
    """Per-rank accounting for one PEP run."""

    rank: int = 0
    role: str = "worker"
    events_processed: int = 0
    batches_received: int = 0
    events_loaded: int = 0
    load_seconds: float = 0.0
    processing_seconds: float = 0.0
    waiting_seconds: float = 0.0
    total_seconds: float = 0.0
    #: reader only: events served per worker rank
    served: dict = field(default_factory=dict)
    #: batch loads re-attempted after a transient failure
    load_retries: int = 0
    #: batch loads that exhausted their retry budget
    load_failures: int = 0
    #: subruns abandoned under ``on_load_failure="skip"``
    subruns_skipped: int = 0
    #: product-load latency hidden behind processing (async pipeline)
    overlap_seconds: float = 0.0
    #: time blocked on in-flight product loads at consumption
    prefetch_wait_seconds: float = 0.0

    @staticmethod
    def aggregate(stats_list: "list[PEPStatistics]") -> dict:
        """Summarize a run's per-rank statistics (the offline analysis
        of the per-rank timestamp files the paper describes)."""
        workers = [s for s in stats_list if s.role in ("worker", "sequential")]
        readers = [s for s in stats_list if s.role == "reader"]
        events = [w.events_processed for w in workers]
        mean_events = sum(events) / len(events) if events else 0.0
        return {
            "ranks": len(stats_list),
            "readers": len(readers),
            "workers": len(workers),
            "events_processed": sum(events),
            "events_loaded": sum(r.events_loaded for r in readers),
            "worker_imbalance": (
                max(events) / mean_events if mean_events else 1.0
            ),
            "total_seconds": max(
                (s.total_seconds for s in stats_list), default=0.0
            ),
            "processing_seconds": sum(w.processing_seconds for w in workers),
            "waiting_seconds": sum(w.waiting_seconds for w in workers),
            "load_retries": sum(s.load_retries for s in stats_list),
            "load_failures": sum(s.load_failures for s in stats_list),
            "subruns_skipped": sum(s.subruns_skipped for s in stats_list),
            "overlap_seconds": sum(s.overlap_seconds for s in stats_list),
            "prefetch_wait_seconds": sum(
                s.prefetch_wait_seconds for s in stats_list
            ),
        }


class _EventStub:
    """A shipped event: identity plus prefetched products.

    Presented to the user callable; ``load`` first serves prefetched
    products and falls back to the datastore otherwise.
    """

    __slots__ = ("datastore", "key", "_triple", "_products")

    def __init__(self, datastore, key: bytes, triple: Tuple[int, int, int],
                 products: dict):
        self.datastore = datastore
        self.key = key
        self._triple = triple
        self._products = products

    @property
    def number(self) -> int:
        return self._triple[2]

    @property
    def run_number(self) -> int:
        return self._triple[0]

    @property
    def subrun_number(self) -> int:
        return self._triple[1]

    def triple(self) -> Tuple[int, int, int]:
        return self._triple

    def load(self, product_type, label: str = ""):
        spec = (product_type_name(product_type), label)
        if spec in self._products:
            value = self._products[spec]
            if value is None:
                raise ProductNotFound(
                    f"no product label={label!r} type={spec[0]!r} "
                    f"in event {self._triple}"
                )
            return value
        return self.datastore.load_product(self.key, product_type, label=label)

    def store(self, obj, label: str = "", type_name=None, batch=None):
        """Store a product on this event (same API as :class:`Event`).

        Lets analysis callables write derived products back without
        touching raw container keys.
        """
        return self.datastore.store_product(self.key, obj, label=label,
                                            type_name=type_name, batch=batch)


class ParallelEventProcessor:
    """Parallel, load-balanced ``for each event`` over a dataset."""

    def __init__(self, datastore, comm=None, *,
                 options: Optional[PEPOptions] = None,
                 products: Sequence[Tuple[object, str]] = (),
                 columns: Optional[Sequence[str]] = None,
                 async_engine=None, **legacy):
        options = resolve_options(options, legacy, PEPOptions,
                                  "ParallelEventProcessor")
        self.options = options
        self.datastore = datastore
        self.comm = comm
        self.input_batch_size = options.input_batch_size
        # A dispatch batch never exceeds one input batch.
        self.dispatch_batch_size = min(options.dispatch_batch_size,
                                       options.input_batch_size)
        self.products = [
            (product_type_name(ptype), label) for ptype, label in products
        ]
        self.num_readers = options.num_readers
        self.queue_depth = options.queue_depth
        #: how many requests a worker keeps in flight (to distinct
        #: readers); > 1 overlaps processing with the next fetch
        self.worker_pipeline = options.worker_pipeline
        #: re-attempts per batch load on top of the client-level retry
        #: policy (which already masks individual RPC failures)
        self.load_retries = options.load_retries
        #: what to do when a batch load exhausts its retries: ``raise``
        #: fails the run; ``skip`` abandons the rest of that subrun,
        #: counts it in :attr:`PEPStatistics.subruns_skipped`, and keeps
        #: going (graceful degradation).
        self.on_load_failure = options.on_load_failure
        #: fields to project in columnar mode (``process_batches`` with
        #: ``options.columnar_loads``); ``None`` otherwise
        self.columns = list(columns) if columns is not None else None
        if options.columnar_loads:
            if len(self.products) != 1:
                raise HEPnOSError(
                    "columnar_loads projects one product spec; got "
                    f"{len(self.products)}"
                )
            if not self.columns:
                raise HEPnOSError(
                    "columnar_loads needs the columns to project "
                    "(pass columns=[...])"
                )
        self._batch_mode = False
        self._async_engine = async_engine

    @property
    def async_engine(self):
        """The engine pipelining batch loads, if one is available."""
        if self._async_engine is not None:
            return self._async_engine
        return getattr(self.datastore, "async_engine", None)

    # -- public API --------------------------------------------------------

    def process(self, dataset, fn: Callable) -> PEPStatistics:
        """Invoke ``fn(event)`` for every event of ``dataset``.

        Collective over the communicator: every rank must call it.
        Returns this rank's statistics.
        """
        start = time.monotonic()
        if self.comm is None or self.comm.size == 1:
            stats = self._process_sequential(dataset, fn)
        else:
            stats = self._process_parallel(dataset, fn)
        stats.total_seconds = time.monotonic() - start
        return stats

    def process_batches(self, dataset, fn: Callable) -> PEPStatistics:
        """Invoke ``fn`` once per dispatched *batch* instead of per event.

        With ``options.columnar_loads`` each batch is an
        :class:`~repro.hepnos.column_block.EventBatch` whose projected
        columns were fetched server-side (one ``scan_columns`` per
        database); otherwise ``fn`` receives the plain stub lists.
        Collective over the communicator, like :meth:`process`.
        """
        start = time.monotonic()
        self._batch_mode = True
        try:
            if self.comm is None or self.comm.size == 1:
                stats = self._process_sequential(dataset, fn)
            else:
                stats = self._process_parallel(dataset, fn)
        finally:
            self._batch_mode = False
        stats.total_seconds = time.monotonic() - start
        return stats

    # -- sequential fallback ------------------------------------------------

    def _process_sequential(self, dataset, fn: Callable) -> PEPStatistics:
        stats = PEPStatistics(rank=0, role="sequential")
        for batch in self._load_batches(self._all_subruns(dataset), stats):
            t0 = time.monotonic()
            self._process_events(batch, fn, stats)
            stats.processing_seconds += time.monotonic() - t0
        return stats

    def _process_events(self, batch, fn: Callable,
                        stats: PEPStatistics) -> None:
        """Apply ``fn`` to every stub of one dispatch/input batch.

        Per-event spans only exist while a tracer is installed; the
        disabled path adds a single module-attribute read per batch.
        """
        if self._batch_mode:
            # Batch dispatch: one call covers the whole chunk (the
            # vectorized analysis path -- fn sees an EventBatch or a
            # stub list, never individual events).
            if _tracing.enabled:
                with _tracing.span("pep.process_batch", events=len(batch),
                                   columnar=isinstance(batch, EventBatch)):
                    fn(batch)
            else:
                fn(batch)
            stats.events_processed += len(batch)
            return
        if _tracing.enabled:
            with _tracing.span("pep.process_batch", events=len(batch)):
                for stub in batch:
                    with _tracing.span("pep.event", run=stub.run_number,
                                       subrun=stub.subrun_number,
                                       event=stub.number):
                        fn(stub)
                    stats.events_processed += 1
            return
        for stub in batch:
            fn(stub)
            stats.events_processed += 1

    # -- shared loading machinery ----------------------------------------------

    def _all_subruns(self, dataset):
        return [subrun for run in dataset for subrun in run]

    def _subruns_by_event_db(self, dataset) -> dict[DbTarget, list]:
        """Group the dataset's subruns by the event database holding
        their events (placement hashes the subrun key)."""
        groups: dict[DbTarget, list] = {}
        for subrun in self._all_subruns(dataset):
            target = self.datastore.target_for("events", subrun.key)
            groups.setdefault(target, []).append(subrun)
        return groups

    def _load_batches(self, subruns, stats: Optional[PEPStatistics] = None):
        """Yield lists of :class:`_EventStub` of up to input_batch_size.

        One ``list_keys`` page + one ``get_multi`` per product spec per
        batch: the few-RPCs/large-payload pattern from the paper.

        Each batch load gets a bounded retry budget on top of the
        client's own retry policy; exhausting it either fails the run
        or (``on_load_failure="skip"``) abandons the remainder of the
        subrun and moves on, with the skip recorded in ``stats``.

        With an :class:`~repro.hepnos.AsyncEngine` available (and
        products to prefetch), loading pipelines instead: batch N+1's
        product loads are in flight while batch N is consumed.
        """
        if (self.async_engine is not None and self.products
                and not self._columnar):
            # Columnar loads already fan out non-blocking inside one
            # load_products_columnar call; the per-spec get_multi_nb
            # pipeline would refetch whole objects, defeating projection.
            yield from self._load_batches_pipelined(subruns, stats)
            return
        for subrun in subruns:
            cursor = b""
            while True:
                try:
                    page, batch = self._load_one_batch(subrun, cursor, stats)
                except RETRYABLE_ERRORS:
                    if self.on_load_failure != "skip":
                        raise
                    if stats is not None:
                        stats.subruns_skipped += 1
                    break  # abandon the remainder of this subrun
                if not page:
                    break
                cursor = page[-1]
                yield batch
                if len(page) < self.input_batch_size:
                    break

    def _load_one_batch(self, subrun, cursor: bytes,
                        stats: Optional[PEPStatistics]):
        """Load one (page, stubs) pair, retrying transient failures.

        Listing a page and prefetching its products are both idempotent,
        so re-running the whole load after a partial failure is safe.
        """
        attempts = 0
        while True:
            try:
                with _tracing.span("pep.list_events",
                                   limit=self.input_batch_size) as sp:
                    page = list(self.datastore.list_child_keys(
                        "events", subrun.key, start_after=cursor,
                        limit=self.input_batch_size,
                    ))
                    sp.set_tag("events", len(page))
                if not page:
                    return page, []
                return page, self._materialize(subrun, page)
            except RETRYABLE_ERRORS:
                attempts += 1
                if stats is not None:
                    stats.load_retries += 1
                if attempts > self.load_retries:
                    if stats is not None:
                        stats.load_failures += 1
                    raise

    @property
    def _columnar(self) -> bool:
        return self._batch_mode and self.options.columnar_loads

    def _materialize(self, subrun, event_keys: list[bytes]):
        prefetched: dict[tuple[str, str], list] = {}
        with _tracing.span("pep.materialize", events=len(event_keys),
                           products=len(self.products)):
            if self._columnar:
                tname, label = self.products[0]
                block = self.datastore.load_products_columnar(
                    event_keys, tname, self.columns, label=label)
                # Stubs carry no prefetched objects: a columnar batch's
                # consumers read the arrays; anything else (raw
                # fallback aside) loads per event on demand.
                stubs = self._stubs_from(subrun, event_keys, {})
                return EventBatch(stubs, block)
            if self.products and self.options.packed_loads:
                # One packed prefix-scan RPC per database covers every
                # event and every product spec at once.
                prefetched = self.datastore.load_products_packed(
                    event_keys, self.products
                )
            else:
                for tname, label in self.products:
                    prefetched[(tname, label)] = (
                        self.datastore.load_products_bulk(
                            event_keys, tname, label=label
                        )
                    )
        return self._stubs_from(subrun, event_keys, prefetched)

    def _stubs_from(self, subrun, event_keys: list[bytes],
                    prefetched: dict) -> list[_EventStub]:
        run_number = subrun.run.number
        subrun_number = subrun.number
        stubs = []
        for i, key in enumerate(event_keys):
            products = {spec: prefetched[spec][i] for spec in prefetched}
            stubs.append(_EventStub(
                self.datastore, key,
                (run_number, subrun_number, hkeys.child_number(key)),
                products,
            ))
        return stubs

    # -- pipelined loading (AsyncEngine) -----------------------------------

    def _list_page(self, subrun, cursor: bytes,
                   stats: Optional[PEPStatistics]) -> list[bytes]:
        """One key-page listing under the batch retry budget."""
        attempts = 0
        while True:
            try:
                with _tracing.span("pep.list_events",
                                   limit=self.input_batch_size) as sp:
                    page = list(self.datastore.list_child_keys(
                        "events", subrun.key, start_after=cursor,
                        limit=self.input_batch_size,
                    ))
                    sp.set_tag("events", len(page))
                return page
            except RETRYABLE_ERRORS:
                attempts += 1
                if stats is not None:
                    stats.load_retries += 1
                if attempts > self.load_retries:
                    if stats is not None:
                        stats.load_failures += 1
                    raise

    def _load_batches_pipelined(self, subruns,
                                stats: Optional[PEPStatistics] = None):
        """Double-buffered batch loading over the AsyncEngine.

        Key pages list synchronously (cheap), but each page's product
        loads are issued as ``get_multi_nb`` futures the moment the
        page is known -- so while batch N's stubs are being processed,
        batch N+1's products are already on the wire.  Failure
        semantics match the synchronous path: a page whose async
        retirement exhausts the client policy re-runs through the
        blocking loader under the remaining ``load_retries`` budget,
        and ``on_load_failure="skip"`` abandons the rest of the subrun
        (in-flight pages of a poisoned subrun are discarded).
        """
        window: deque = deque()
        poisoned: set[int] = set()

        def pages():
            for subrun in subruns:
                cursor = b""
                while True:
                    if id(subrun) in poisoned:
                        break
                    try:
                        page = self._list_page(subrun, cursor, stats)
                    except RETRYABLE_ERRORS:
                        if self.on_load_failure != "skip":
                            raise
                        if stats is not None:
                            stats.subruns_skipped += 1
                        break
                    if not page:
                        break
                    cursor = page[-1]
                    yield subrun, page
                    if len(page) < self.input_batch_size:
                        break

        for subrun, page in pages():
            groups = {
                spec: self.datastore.load_products_bulk_nb(
                    page, spec[0], label=spec[1]
                )
                for spec in self.products
            }
            window.append((subrun, page, groups))
            if len(window) > 1:
                batch = self._finish_pipelined(*window.popleft(),
                                               stats, poisoned)
                if batch is not None:
                    yield batch
        while window:
            batch = self._finish_pipelined(*window.popleft(), stats, poisoned)
            if batch is not None:
                yield batch

    def _finish_pipelined(self, subrun, page, groups,
                          stats: Optional[PEPStatistics],
                          poisoned: set) -> Optional[list]:
        if id(subrun) in poisoned:
            return None
        wait_start = time.monotonic()
        overlap = sum(g.overlap_seconds(wait_start) for g in groups.values())
        try:
            with _tracing.span("pep.pipeline.finish", events=len(page)) as sp:
                prefetched = {spec: groups[spec].wait() for spec in groups}
                sp.set_tag("overlap_seconds", round(overlap, 6))
        except RETRYABLE_ERRORS:
            # Async retirement gave up; re-run this page through the
            # synchronous retrying loader before declaring failure.
            if stats is not None:
                stats.load_retries += 1
            try:
                return self._materialize_retrying(subrun, page, stats)
            except RETRYABLE_ERRORS:
                if self.on_load_failure != "skip":
                    raise
                if stats is not None:
                    stats.subruns_skipped += 1
                poisoned.add(id(subrun))
                return None
        if stats is not None:
            stats.overlap_seconds += overlap
            stats.prefetch_wait_seconds += time.monotonic() - wait_start
        return self._stubs_from(subrun, page, prefetched)

    def _materialize_retrying(self, subrun, page,
                              stats: Optional[PEPStatistics]) -> list:
        attempts = 0
        while True:
            try:
                return self._materialize(subrun, page)
            except RETRYABLE_ERRORS:
                attempts += 1
                if stats is not None:
                    stats.load_retries += 1
                if attempts > self.load_retries:
                    if stats is not None:
                        stats.load_failures += 1
                    raise

    # -- parallel mode ---------------------------------------------------------

    def _roles(self, dataset):
        """Decide reader ranks and the per-reader subrun assignment."""
        groups = self._subruns_by_event_db(dataset)
        size = self.comm.size
        if self.num_readers:
            wanted = self.num_readers
        else:
            # Paper default: one reader per event database -- but never
            # starve the workers when the rank count is small.
            wanted = min(len(groups), max(1, size // 4))
        num_readers = max(1, min(wanted, size - 1, max(len(groups), 1)))
        # Deterministic assignment: sort db groups, round-robin to readers.
        assignments: list[list] = [[] for _ in range(num_readers)]
        for i, target in enumerate(sorted(groups)):
            assignments[i % num_readers].extend(groups[target])
        return num_readers, assignments

    def _process_parallel(self, dataset, fn: Callable) -> PEPStatistics:
        comm = self.comm
        num_readers, assignments = self._roles(dataset)
        rank = comm.rank
        try:
            if rank < num_readers:
                stats = self._run_reader(assignments[rank],
                                         num_workers=comm.size - num_readers)
            else:
                stats = self._run_worker(fn, readers=list(range(num_readers)))
            stats.rank = rank
            return stats
        finally:
            # Keep the exit collective even on failure so surviving ranks
            # do not hang in recv.
            comm.barrier()

    def _run_reader(self, subruns, num_workers: int) -> PEPStatistics:
        stats = PEPStatistics(role="reader")
        comm = self.comm
        queue: deque = deque()
        lock = threading.Lock()
        ready = threading.Condition(lock)
        state = {"done": False, "error": None}
        max_queued = max(
            1, self.queue_depth * self.input_batch_size // self.dispatch_batch_size
        )

        def loader() -> None:
            try:
                iterator = self._load_batches(subruns, stats)
                while True:
                    t0 = time.monotonic()
                    batch = next(iterator, None)
                    stats.load_seconds += time.monotonic() - t0
                    if batch is None:
                        break
                    stats.events_loaded += len(batch)
                    for i in range(0, len(batch), self.dispatch_batch_size):
                        chunk = batch[i : i + self.dispatch_batch_size]
                        with ready:
                            while len(queue) >= max_queued:
                                ready.wait()
                            queue.append(chunk)
                            ready.notify_all()
            except BaseException as exc:  # noqa: BLE001 - forwarded to workers
                state["error"] = exc
            finally:
                with ready:
                    state["done"] = True
                    ready.notify_all()

        thread = threading.Thread(target=loader, daemon=True,
                                  name=f"pep-loader-{comm.rank}")
        thread.start()

        dones_sent = 0
        while dones_sent < num_workers:
            worker, _src, _tag = None, None, None
            payload, src, _ = comm.recv_with_status(tag=_TAG_REQUEST,
                                                    timeout=None)
            worker = src
            with ready:
                while not queue and not state["done"]:
                    ready.wait()
                chunk = queue.popleft() if queue else None
                ready.notify_all()
            if state["error"] is not None:
                comm.send(("error", repr(state["error"])), dest=worker,
                          tag=_TAG_REPLY)
                dones_sent += 1
                continue
            if chunk is None:
                comm.send(("done", None), dest=worker, tag=_TAG_REPLY)
                dones_sent += 1
            else:
                comm.send(("batch", chunk), dest=worker, tag=_TAG_REPLY)
                stats.served[worker] = stats.served.get(worker, 0) + len(chunk)
        thread.join()
        if state["error"] is not None:
            raise HEPnOSError(f"PEP reader failed: {state['error']!r}")
        return stats

    def _run_worker(self, fn: Callable,
                    readers: list[int]) -> PEPStatistics:
        stats = PEPStatistics(role="worker")
        comm = self.comm
        active = set(readers)
        outstanding: set[int] = set()
        errors: list[str] = []
        rr = comm.rank % max(len(readers), 1)
        order = readers[rr:] + readers[:rr]  # stagger first contacts
        depth = self.worker_pipeline

        def top_up() -> None:
            """Keep up to ``depth`` requests in flight, one per reader."""
            for reader in order:
                if len(outstanding) >= depth:
                    return
                if reader in active and reader not in outstanding:
                    comm.send(None, dest=reader, tag=_TAG_REQUEST)
                    outstanding.add(reader)

        top_up()
        while outstanding:
            t0 = time.monotonic()
            (kind, payload), src, _ = comm.recv_with_status(
                tag=_TAG_REPLY, timeout=None
            )
            stats.waiting_seconds += time.monotonic() - t0
            outstanding.discard(src)
            if kind == "done":
                active.discard(src)
            elif kind == "error":
                # Keep draining the other readers so they terminate,
                # then report the failure.
                errors.append(payload)
                active.discard(src)
            else:
                # Request the next batch BEFORE processing this one so
                # the fetch overlaps the compute (pipeline > 1 also
                # spreads the in-flight requests over readers).
                top_up()
                stats.batches_received += 1
                t1 = time.monotonic()
                self._process_events(payload, fn, stats)
                stats.processing_seconds += time.monotonic() - t1
            top_up()
        if errors:
            raise HEPnOSError(f"PEP reader reported: {errors[0]}")
        return stats
