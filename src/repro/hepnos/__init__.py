"""HEPnOS: the High Energy Physics new Object Store (the paper's system).

HEPnOS organizes data the way HEP scientists do (paper section II-A):

- **datasets** are named containers, nested like folders;
- **runs**, **subruns** and **events** are numbered containers
  (runs in datasets, subruns in runs, events in subruns);
- any run/subrun/event holds zero or more **products**: serialized
  objects identified by a *label* and a *type*.

Usage mirrors the paper's Listing 1.  :func:`connect` opens a
:class:`TenantSession` that owns the whole client side (datastore,
async engine, tenant identity) behind one context manager::

    with hepnos.connect(servers=servers, tenant="nova-prod") as session:
        ds = session.create_dataset("fermilab/nova")

The lower-level constructors remain public and unchanged::

    datastore = DataStore.connect(fabric, connection)
    ds = datastore.create_dataset("fermilab/nova")
    run = ds.create_run(43)
    subrun = run.create_subrun(56)
    event = subrun.create_event(25)
    event.store(particles, label="tracker")
    loaded = event.load(vector_of(Particle), label="tracker")
    for subrun in run:
        print(subrun.number)

Performance features (section II-D): :class:`WriteBatch` and
:class:`AsynchronousWriteBatch` group updates per target database;
:class:`Prefetcher` streams container iteration;
:class:`ParallelEventProcessor` gives a group of MPI ranks
load-balanced parallel iteration over a dataset's events; and
:class:`AsyncEngine` pipelines all of the above through a bounded
window of non-blocking operations (futures with wait/test/then/cancel
semantics, retired under the client retry policy).

This module is the complete public client surface: handle types
(:class:`DataStore`, :class:`DataSet`, :class:`Run`, :class:`SubRun`,
:class:`Event`, :class:`ProductID`), the async layer
(:class:`AsyncEngine`, :class:`OperationFuture`, :class:`FutureGroup`),
the performance objects, and their configuration dataclasses
(:class:`PEPOptions`, :class:`PrefetchOptions`,
:class:`ProductCacheOptions`, :class:`QuotaOptions` -- all living in
the :mod:`repro.hepnos.options` namespace).  Application code
never needs raw ``container_key`` bytes: store and load products
through the typed handles (``event.store(obj, label)``,
``event.load(Type, label)``).  The exception hierarchy is importable
from :mod:`repro.errors`.
"""

from repro.hepnos.column_block import ColumnBlock, EventBatch
from repro.hepnos.connection import (
    ConnectionInfo,
    DbTarget,
    connection_from_servers,
)
from repro.hepnos.datastore import DataStore
from repro.hepnos.placement import (
    FullKeyPlacement,
    ParentHashPlacement,
    ShardMap,
)
from repro.hepnos.containers import DataSet, Run, SubRun, Event
from repro.hepnos.product import ProductID, product_type_name, vector_of
from repro.hepnos.async_engine import AsyncEngine, AsyncEngineStats, FutureGroup
from repro.hepnos import options
from repro.hepnos.options import (
    PEPOptions,
    PrefetchOptions,
    ProductCacheOptions,
    QuotaOptions,
)
from repro.hepnos.session import TenantSession, connect
from repro.hepnos.product_cache import ProductCache
from repro.hepnos.write_batch import WriteBatch, AsynchronousWriteBatch
from repro.hepnos.prefetcher import Prefetcher, PrefetchedEvent
from repro.hepnos.parallel_event_processor import (
    ParallelEventProcessor,
    PEPStatistics,
)
from repro.hepnos.loader import (
    DataLoader,
    discover_schema,
    generate_class_code,
    build_product_class,
)
from repro.hepnos.exporter import DatasetExporter, ExportStats
from repro.yokan.nonblocking import OperationFuture

__all__ = [
    "connect",
    "TenantSession",
    "options",
    "ConnectionInfo",
    "DbTarget",
    "connection_from_servers",
    "DataStore",
    "ColumnBlock",
    "EventBatch",
    "ParentHashPlacement",
    "FullKeyPlacement",
    "ShardMap",
    "DataSet",
    "Run",
    "SubRun",
    "Event",
    "ProductID",
    "product_type_name",
    "vector_of",
    "AsyncEngine",
    "AsyncEngineStats",
    "FutureGroup",
    "OperationFuture",
    "PEPOptions",
    "PrefetchOptions",
    "ProductCacheOptions",
    "QuotaOptions",
    "ProductCache",
    "WriteBatch",
    "AsynchronousWriteBatch",
    "Prefetcher",
    "PrefetchedEvent",
    "ParallelEventProcessor",
    "PEPStatistics",
    "DataLoader",
    "DatasetExporter",
    "ExportStats",
    "discover_schema",
    "generate_class_code",
    "build_product_class",
]
