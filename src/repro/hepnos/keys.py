"""Container and product key construction (paper section II-C).

Key shapes (all big-endian numbers, so byte order == numeric order):

- dataset entry: the full path string (``fermilab/nova``), valued with
  the dataset's 16-byte UUID;
- run:    ``<dataset uuid><run#>``          (16 + 8 bytes)
- subrun: ``<dataset uuid><run#><subrun#>`` (16 + 8 + 8 bytes)
- event:  ``<dataset uuid><run#><subrun#><event#>`` (16 + 8 + 8 + 8)
- product: ``<container key><label>#<type>``

Placement hashes the *parent* key, so all direct children of a
container land in one database and iterate in order there.
"""

from __future__ import annotations

import hashlib

from repro.errors import HEPnOSError
from repro.utils import decode_u64_be, encode_u64_be

UUID_LEN = 16
RUN_KEY_LEN = UUID_LEN + 8
SUBRUN_KEY_LEN = UUID_LEN + 16
EVENT_KEY_LEN = UUID_LEN + 24

_DATASET_NAMESPACE = b"hepnos-dataset-namespace-v1"


def new_dataset_uuid(path: str) -> bytes:
    """The UUID of the dataset at ``path`` (deterministic).

    Derived by hashing the normalized path (UUIDv5 semantics), so
    concurrent clients creating the same dataset mint the *same*
    identity -- creation stays an idempotent key insert with no
    read-modify-write race.
    """
    normalized = normalize_path(path)
    digest = hashlib.sha1(
        _DATASET_NAMESPACE + normalized.encode("utf-8")
    ).digest()
    return digest[:UUID_LEN]


def normalize_path(path: str) -> str:
    """Canonical dataset path: no leading/trailing/duplicate slashes."""
    parts = [p for p in path.split("/") if p]
    if not parts:
        raise HEPnOSError("dataset path is empty")
    for part in parts:
        if "#" in part:
            raise HEPnOSError(f"dataset name {part!r} may not contain '#'")
    return "/".join(parts)


def parent_path(path: str) -> str:
    """The parent of a normalized path ('' for root datasets)."""
    head, _, _ = path.rpartition("/")
    return head


def dataset_key(path: str) -> bytes:
    return normalize_path(path).encode("utf-8")


def run_key(dataset_uuid: bytes, run_number: int) -> bytes:
    _check_uuid(dataset_uuid)
    return dataset_uuid + encode_u64_be(run_number)


def subrun_key(run_key_bytes: bytes, subrun_number: int) -> bytes:
    if len(run_key_bytes) != RUN_KEY_LEN:
        raise HEPnOSError("bad run key length")
    return run_key_bytes + encode_u64_be(subrun_number)


def event_key(subrun_key_bytes: bytes, event_number: int) -> bytes:
    if len(subrun_key_bytes) != SUBRUN_KEY_LEN:
        raise HEPnOSError("bad subrun key length")
    return subrun_key_bytes + encode_u64_be(event_number)


def product_key(container_key: bytes, label: str, type_name: str) -> bytes:
    if "#" in label:
        raise HEPnOSError(f"product label {label!r} may not contain '#'")
    if not type_name:
        raise HEPnOSError("product type name is empty")
    return container_key + label.encode("utf-8") + b"#" + type_name.encode("utf-8")


def child_number(key: bytes) -> int:
    """The trailing (own) number of a run/subrun/event key."""
    if len(key) not in (RUN_KEY_LEN, SUBRUN_KEY_LEN, EVENT_KEY_LEN):
        raise HEPnOSError(f"not a numbered container key ({len(key)} bytes)")
    return decode_u64_be(key[-8:])


def _check_uuid(dataset_uuid: bytes) -> None:
    if len(dataset_uuid) != UUID_LEN:
        raise HEPnOSError(
            f"dataset uuid must be {UUID_LEN} bytes, got {len(dataset_uuid)}"
        )
