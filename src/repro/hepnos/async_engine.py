"""AsyncEngine: pipelined non-blocking I/O for HEPnOS clients.

Mirrors ``hepnos::AsyncEngine`` from the paper (section II-D): most of
HEPnOS's speedup over the file-based workflow comes from hiding store
latency behind computation, and this is the object that does the
hiding.  It manages a bounded window of in-flight non-blocking Yokan
operations (:class:`~repro.yokan.OperationFuture`), a completion queue,
and drain-on-shutdown semantics.  The operations themselves ride the
fabric's shared Argobots runtime -- each forward becomes a handler ULT
on the provider engine's pool -- so the engine's job is purely
client-side flow control: dispatch eagerly while the window has room,
queue (cancellably) when it does not, and retire completions in order.

Construct one over a :class:`~repro.hepnos.DataStore` and the
datastore, its :class:`~repro.hepnos.Prefetcher`, its
:class:`~repro.hepnos.WriteBatch`, and the ParallelEventProcessor all
pick it up automatically::

    engine = AsyncEngine(datastore, max_inflight=8)
    prefetcher = Prefetcher(datastore, products=[(Hit, "reco")])
    # product loads for page N+1 are now in flight while page N is
    # being processed; DataStore.shutdown() drains the window.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.errors import OperationCancelled, ReproError
from repro.monitor import tracing as _tracing
from repro.yokan.nonblocking import OperationFuture


@dataclass
class AsyncEngineStats:
    """Counters for one engine's lifetime."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    #: operations that had to queue behind a full window
    deferred: int = 0
    peak_inflight: int = 0


class FutureGroup:
    """A set of operation futures retired together.

    ``wait`` retires every member (each under the client retry policy)
    and returns the list of results in member order -- or, when the
    group was built with an ``assemble`` callable, whatever that
    callable makes of the result list (the datastore uses this to
    reassemble per-database scatter/gather loads into one aligned
    product list).
    """

    __slots__ = ("futures", "_assemble")

    def __init__(self, futures: Iterable[OperationFuture] = (),
                 assemble: Optional[Callable[[list], object]] = None):
        self.futures: List[OperationFuture] = list(futures)
        self._assemble = assemble

    def add(self, future: OperationFuture) -> OperationFuture:
        self.futures.append(future)
        return future

    def __len__(self) -> int:
        return len(self.futures)

    @property
    def done(self) -> bool:
        return all(f.done for f in self.futures)

    def test(self) -> bool:
        """Non-blocking: advance members; True when all have settled."""
        settled = True
        for future in self.futures:
            if not future.test():
                settled = False
        return settled

    def cancel(self) -> int:
        """Cancel every still-pending member; returns how many took."""
        return sum(1 for f in self.futures if f.cancel())

    def wait(self, timeout: Optional[float] = None):
        results = [f.wait(timeout=timeout) for f in self.futures]
        if self._assemble is not None:
            return self._assemble(results)
        return results

    def overlap_seconds(self, until: float) -> float:
        """Total in-flight-before-``until`` time across members."""
        return sum(f.overlap_seconds(until) for f in self.futures)


class AsyncEngine:
    """Bounded-window scheduler for non-blocking HEPnOS operations.

    ``max_inflight`` caps how many forwards may be outstanding at once
    (the paper's pipelining is bounded for the same reason its write
    batches are: unbounded issue oversaturates the NIC injection
    bandwidth).  Submissions beyond the cap queue in FIFO order and
    stay cancellable until a slot frees.

    A slot is considered free once the operation's *response has
    landed* -- retirement (decode, CRC check, any policy-driven
    re-issues) happens on whichever thread waits on the future, never
    on the transport threads.
    """

    def __init__(self, datastore=None, max_inflight: int = 8):
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self.max_inflight = max_inflight
        self.fabric = None
        self.stats = AsyncEngineStats()
        self._lock = threading.RLock()
        #: submitted, not yet settled (dispatched or queued)
        self._outstanding: List[OperationFuture] = []
        #: pending subset of _outstanding, FIFO
        self._queued: deque[OperationFuture] = deque()
        #: settled futures in completion order, until popped
        self._completed: deque[OperationFuture] = deque()
        self.datastore = None
        if datastore is not None:
            self.attach(datastore)

    def attach(self, datastore) -> "AsyncEngine":
        """Bind to a datastore (sets ``datastore.async_engine``)."""
        self.datastore = datastore
        self.fabric = datastore.fabric
        datastore.async_engine = self
        return self

    # -- submission --------------------------------------------------------

    def submit(self, future: OperationFuture) -> OperationFuture:
        """Admit a future to the window; dispatch now or queue.

        Accepts an undispatched future (``dispatch=False`` on the nb
        verbs); already-dispatched futures are admitted for completion
        tracking only.  Returns the future for chaining.
        """
        with self._lock:
            self.stats.submitted += 1
            self._outstanding.append(future)
            if (future.state == OperationFuture.PENDING
                    and self._inflight_count() >= self.max_inflight):
                self.stats.deferred += 1
                self._queued.append(future)
                future.then(self._record_done)
                return future
        future.then(self._record_done)
        future.dispatch()
        self.pump()
        return future

    def submit_all(self, futures: Iterable[OperationFuture],
                   assemble: Optional[Callable[[list], object]] = None
                   ) -> FutureGroup:
        group = FutureGroup(assemble=assemble)
        for future in futures:
            group.add(self.submit(future))
        return group

    # -- progress ----------------------------------------------------------

    def _inflight_count(self) -> int:
        # Caller holds the lock.  A dispatched future whose response
        # has landed no longer occupies the transport, so its slot is
        # free even before someone retires it.
        count = 0
        for future in self._outstanding:
            if future.state != OperationFuture.INFLIGHT:
                continue
            eventual = future._eventual
            if eventual is None or not eventual.is_ready:
                count += 1
        return count

    def pump(self) -> int:
        """Advance the window: reap settled slots, dispatch queued.

        Called from every touch point (submit / wait / drain); inline
        fabrics also get a bounded progress poll so responses can land
        without a blocking wait.  Returns how many queued operations
        were dispatched.
        """
        if self.fabric is not None:
            self.fabric.poll()
        to_dispatch = []
        with self._lock:
            self._outstanding = [f for f in self._outstanding if not f.done]
            inflight = self._inflight_count()
            self.stats.peak_inflight = max(self.stats.peak_inflight, inflight)
            while self._queued and inflight < self.max_inflight:
                future = self._queued.popleft()
                if future.state != OperationFuture.PENDING:
                    continue  # cancelled (or force-dispatched by wait())
                to_dispatch.append(future)
                inflight += 1
            if to_dispatch:
                self.stats.peak_inflight = max(self.stats.peak_inflight,
                                               inflight)
        for future in to_dispatch:
            future.dispatch()
        return len(to_dispatch)

    def _record_done(self, future: OperationFuture) -> None:
        with self._lock:
            if future.state == OperationFuture.CANCELLED:
                self.stats.cancelled += 1
            elif future.exception is not None:
                self.stats.failed += 1
                self.stats.completed += 1
            else:
                self.stats.completed += 1
            self._completed.append(future)

    # -- completion queue --------------------------------------------------

    def pop_completed(self) -> Optional[OperationFuture]:
        """Next settled future in completion order, or ``None``."""
        with self._lock:
            return self._completed.popleft() if self._completed else None

    def drain_completed(self) -> List[OperationFuture]:
        """All settled-but-unclaimed futures, in completion order."""
        with self._lock:
            out, self._completed = list(self._completed), deque()
            return out

    @property
    def outstanding(self) -> int:
        with self._lock:
            return sum(1 for f in self._outstanding if not f.done)

    # -- shutdown ----------------------------------------------------------

    def drain(self, raise_errors: bool = False) -> list:
        """Retire every outstanding operation (queued ones included).

        Each failure is ``(future, exception)`` in the returned list;
        cancelled futures are skipped silently.  ``DataStore.shutdown``
        calls this so no acknowledged-but-unretired write or prefetch
        is abandoned.  With ``raise_errors`` the first failure re-raises
        after everything has settled.
        """
        failures = []
        with _tracing.span("hepnos.async_engine.drain",
                           outstanding=self.outstanding) as sp:
            while True:
                with self._lock:
                    pending = [f for f in self._outstanding if not f.done]
                if not pending:
                    break
                for future in pending:
                    try:
                        future.wait()
                    except OperationCancelled:
                        pass
                    except ReproError as exc:
                        failures.append((future, exc))
                self.pump()
            sp.set_tag("failures", len(failures))
        if raise_errors and failures:
            raise failures[0][1]
        return failures

    def __enter__(self) -> "AsyncEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain(raise_errors=exc_type is None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AsyncEngine(max_inflight={self.max_inflight}, "
                f"outstanding={self.outstanding})")
