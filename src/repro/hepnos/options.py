"""Client-side configuration dataclasses (PEPOptions, PrefetchOptions).

The ParallelEventProcessor and the Prefetcher accumulated a grab-bag of
tuning keyword arguments over time.  These keyword-only dataclasses are
now the public way to configure them::

    pep = ParallelEventProcessor(
        datastore, options=PEPOptions(input_batch_size=4096),
        products=[(Hit, "reco")],
    )

The legacy keyword arguments are still accepted for one release and
forward into the corresponding options field, with a
``DeprecationWarning`` naming the replacement.  ``products`` and
``comm`` are not configuration -- they describe *what* to process, not
*how* -- and remain first-class parameters.

Validation lives here (``__post_init__``) so a bad value fails at
construction whichever spelling the caller used, with the same
exception types the processors historically raised.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import Optional

from repro.errors import HEPnOSError


@dataclass(frozen=True)
class PEPOptions:
    """Tuning knobs for :class:`~repro.hepnos.ParallelEventProcessor`.

    All fields are keyword-only.  The defaults reproduce the paper's
    configuration: large input batches (few RPCs, big transfers), small
    dispatch batches (fine-grained load balancing).
    """

    #: events fetched per reader RPC round (paper default 16384)
    input_batch_size: int = 16384
    #: events handed to a worker per pull (paper default 64)
    dispatch_batch_size: int = 64
    #: reader ranks; ``None`` = one per event database (bounded)
    num_readers: Optional[int] = None
    #: input batches a reader may buffer ahead of the workers
    queue_depth: int = 8
    #: concurrent pull requests a worker keeps in flight
    worker_pipeline: int = 1
    #: batch-load re-attempts on top of the client retry policy
    load_retries: int = 2
    #: ``"raise"`` fails the run; ``"skip"`` abandons the subrun
    on_load_failure: str = "raise"
    #: load whole events with one packed prefix-scan RPC per database
    #: instead of one ``get_multi`` per product spec (blocking path only;
    #: the pipelined non-blocking path keeps per-spec ``get_multi_nb``)
    packed_loads: bool = True
    #: fetch only the columns a vectorized ``process_batches`` handler
    #: declared, via the server-side ``scan_columns`` projection, and
    #: hand the handler struct-of-arrays event batches; requires exactly
    #: one product spec and has no effect on per-event ``process()``
    columnar_loads: bool = False

    def __post_init__(self) -> None:
        if self.input_batch_size <= 0 or self.dispatch_batch_size <= 0:
            raise HEPnOSError("batch sizes must be positive")
        if self.worker_pipeline <= 0:
            raise HEPnOSError("worker_pipeline must be positive")
        if self.load_retries < 0:
            raise HEPnOSError("load_retries must be non-negative")
        if self.on_load_failure not in ("raise", "skip"):
            raise HEPnOSError("on_load_failure must be 'raise' or 'skip'")


@dataclass(frozen=True)
class PrefetchOptions:
    """Tuning knobs for :class:`~repro.hepnos.Prefetcher`."""

    #: events per key page / per batched product load
    batch_size: int = 1024
    #: pages of product loads kept in flight ahead of consumption
    #: (only effective with an AsyncEngine; 0 disables lookahead)
    lookahead: int = 1
    #: load whole events with one packed prefix-scan RPC per database
    #: instead of one ``get_multi`` per product spec (blocking path only)
    packed_loads: bool = True
    #: project declared columns server-side (``scan_columns``) instead of
    #: shipping whole products; events still load lazily per product
    columnar_loads: bool = False

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.lookahead < 0:
            raise ValueError("lookahead must be non-negative")


@dataclass(frozen=True)
class ProductCacheOptions:
    """Configuration for the :class:`DataStore` product cache.

    Products are immutable once written, so the cache never needs
    invalidation; these knobs only bound its footprint.  Disabling the
    cache removes it entirely (the load paths skip every cache branch).
    """

    #: whether the datastore keeps a client-side product cache at all
    enabled: bool = True
    #: total serialized bytes the cache may hold
    max_bytes: int = 64 * 1024 * 1024
    #: maximum number of cached products
    max_entries: int = 65536

    def __post_init__(self) -> None:
        if self.max_bytes <= 0:
            raise HEPnOSError("max_bytes must be positive")
        if self.max_entries <= 0:
            raise HEPnOSError("max_entries must be positive")


def resolve_options(options, legacy: dict, options_type, owner: str):
    """Merge legacy kwargs into an options dataclass, warning once.

    ``legacy`` maps field names to caller-supplied values; unknown names
    raise ``TypeError`` like any bad keyword argument would.  Passing
    both ``options`` and legacy kwargs is ambiguous and rejected.
    """
    known = {f.name for f in fields(options_type)}
    unknown = set(legacy) - known
    if unknown:
        raise TypeError(
            f"{owner} got unexpected keyword arguments: {sorted(unknown)}"
        )
    if not legacy:
        return options if options is not None else options_type()
    if options is not None:
        raise HEPnOSError(
            f"pass either options= or the legacy keyword arguments "
            f"{sorted(legacy)}, not both"
        )
    warnings.warn(
        f"the {sorted(legacy)} keyword arguments of {owner} are "
        f"deprecated; pass options={options_type.__name__}(...) instead",
        DeprecationWarning, stacklevel=3,
    )
    return options_type(**legacy)
