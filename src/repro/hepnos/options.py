"""The consolidated client options namespace (``repro.hepnos.options``).

Every client-side configuration dataclass lives here, importable from
one documented place::

    from repro.hepnos import options

    session = hepnos.connect(
        servers=servers,
        quota=options.QuotaOptions(tenant="nova-prod"),
        product_cache=options.ProductCacheOptions(max_bytes=1 << 28),
    )
    pep = ParallelEventProcessor(
        session.datastore, options=options.PEPOptions(input_batch_size=4096),
        products=[(Hit, "reco")],
    )

- :class:`PEPOptions` -- the ParallelEventProcessor;
- :class:`PrefetchOptions` -- the Prefetcher;
- :class:`ProductCacheOptions` -- the DataStore product cache;
- :class:`QuotaOptions` -- the tenant identity of a session
  (:func:`repro.hepnos.connect`).

``products`` and ``comm`` are not configuration -- they describe *what*
to process, not *how* -- and remain first-class parameters.

The legacy tuning keyword arguments deprecated in PR 3 are no longer
accepted: :func:`resolve_options` raises ``TypeError`` naming the
replacement spelling.

Validation lives here (``__post_init__``) so a bad value fails at
construction whichever spelling the caller used, with the same
exception types the processors historically raised.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

from repro.errors import HEPnOSError


@dataclass(frozen=True)
class PEPOptions:
    """Tuning knobs for :class:`~repro.hepnos.ParallelEventProcessor`.

    All fields are keyword-only.  The defaults reproduce the paper's
    configuration: large input batches (few RPCs, big transfers), small
    dispatch batches (fine-grained load balancing).
    """

    #: events fetched per reader RPC round (paper default 16384)
    input_batch_size: int = 16384
    #: events handed to a worker per pull (paper default 64)
    dispatch_batch_size: int = 64
    #: reader ranks; ``None`` = one per event database (bounded)
    num_readers: Optional[int] = None
    #: input batches a reader may buffer ahead of the workers
    queue_depth: int = 8
    #: concurrent pull requests a worker keeps in flight
    worker_pipeline: int = 1
    #: batch-load re-attempts on top of the client retry policy
    load_retries: int = 2
    #: ``"raise"`` fails the run; ``"skip"`` abandons the subrun
    on_load_failure: str = "raise"
    #: load whole events with one packed prefix-scan RPC per database
    #: instead of one ``get_multi`` per product spec (blocking path only;
    #: the pipelined non-blocking path keeps per-spec ``get_multi_nb``)
    packed_loads: bool = True
    #: fetch only the columns a vectorized ``process_batches`` handler
    #: declared, via the server-side ``scan_columns`` projection, and
    #: hand the handler struct-of-arrays event batches; requires exactly
    #: one product spec and has no effect on per-event ``process()``
    columnar_loads: bool = False

    def __post_init__(self) -> None:
        if self.input_batch_size <= 0 or self.dispatch_batch_size <= 0:
            raise HEPnOSError("batch sizes must be positive")
        if self.worker_pipeline <= 0:
            raise HEPnOSError("worker_pipeline must be positive")
        if self.load_retries < 0:
            raise HEPnOSError("load_retries must be non-negative")
        if self.on_load_failure not in ("raise", "skip"):
            raise HEPnOSError("on_load_failure must be 'raise' or 'skip'")


@dataclass(frozen=True)
class PrefetchOptions:
    """Tuning knobs for :class:`~repro.hepnos.Prefetcher`."""

    #: events per key page / per batched product load
    batch_size: int = 1024
    #: pages of product loads kept in flight ahead of consumption
    #: (only effective with an AsyncEngine; 0 disables lookahead)
    lookahead: int = 1
    #: load whole events with one packed prefix-scan RPC per database
    #: instead of one ``get_multi`` per product spec (blocking path only)
    packed_loads: bool = True
    #: project declared columns server-side (``scan_columns``) instead of
    #: shipping whole products; events still load lazily per product
    columnar_loads: bool = False

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.lookahead < 0:
            raise ValueError("lookahead must be non-negative")


@dataclass(frozen=True)
class ProductCacheOptions:
    """Configuration for the :class:`DataStore` product cache.

    Products are immutable once written, so the cache never needs
    invalidation; these knobs only bound its footprint.  Disabling the
    cache removes it entirely (the load paths skip every cache branch).
    """

    #: whether the datastore keeps a client-side product cache at all
    enabled: bool = True
    #: total serialized bytes the cache may hold
    max_bytes: int = 64 * 1024 * 1024
    #: maximum number of cached products
    max_entries: int = 65536

    def __post_init__(self) -> None:
        if self.max_bytes <= 0:
            raise HEPnOSError("max_bytes must be positive")
        if self.max_entries <= 0:
            raise HEPnOSError("max_entries must be positive")


@dataclass(frozen=True)
class QuotaOptions:
    """Tenant identity and service terms of one session.

    Carried by every RPC the session issues (as a wire-level tenant
    envelope) so the server-side request broker can meter the session
    against its registered rate limits and quotas.  The default --
    an empty tenant id -- sends untagged traffic that bypasses
    admission control, preserving the unbrokered fast path.
    """

    #: tenant id the service accounts this session under
    tenant: str = ""
    #: ``"interactive"`` (preempts batch) or ``"batch"``
    priority: str = "batch"
    #: quota token proving the session may use the tenant's terms
    token: str = ""

    def __post_init__(self) -> None:
        from repro.yokan import wire
        wire.priority_code(self.priority)  # validates the class name

    def envelope(self):
        """The :class:`~repro.yokan.wire.TenantEnvelope` equivalent."""
        from repro.yokan import wire
        if not self.tenant:
            return None
        return wire.TenantEnvelope(self.tenant,
                                   wire.priority_code(self.priority),
                                   self.token)


def resolve_options(options, legacy: dict, options_type, owner: str):
    """Reject the pre-PR3 tuning kwargs with a migration message.

    ``legacy`` maps field names to caller-supplied values; unknown names
    raise ``TypeError`` like any bad keyword argument would.  Known
    names raise ``TypeError`` too: they were deprecated in PR 3 and the
    grace release has passed -- the message names the exact
    ``options=...`` spelling to migrate to.
    """
    known = {f.name for f in fields(options_type)}
    unknown = set(legacy) - known
    if unknown:
        raise TypeError(
            f"{owner} got unexpected keyword arguments: {sorted(unknown)}"
        )
    if not legacy:
        return options if options is not None else options_type()
    if options is not None:
        raise HEPnOSError(
            f"pass either options= or the legacy keyword arguments "
            f"{sorted(legacy)}, not both"
        )
    raise TypeError(
        f"the {sorted(legacy)} keyword arguments of {owner} were removed "
        f"(deprecated since PR 3); pass "
        f"options={options_type.__name__}({', '.join(sorted(legacy))}=...) "
        f"instead"
    )


__all__ = [
    "PEPOptions",
    "PrefetchOptions",
    "ProductCacheOptions",
    "QuotaOptions",
    "resolve_options",
]
