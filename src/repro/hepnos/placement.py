"""Placement: which database holds a key (paper section II-C3).

HEPnOS places a container key by consistent-hashing its **parent's**
key, so that (1) all direct children of a container live in a single
database and (2) iterating them uses one database's ordered iterator
instead of interrogating every server and merging.  Products are placed
by the hash of their parent container key, so all products of one event
can be read in a batch from one database.

:class:`FullKeyPlacement` implements the rejected alternative --
consistent hashing of the *full* key -- and exists for the A-place
ablation benchmark: listing a container's children under it requires
querying every database.
"""

from __future__ import annotations

from repro.hepnos.connection import ConnectionInfo, DbTarget
from repro.utils import ConsistentHashRing


class ParentHashPlacement:
    """The paper's strategy: place children by the parent's key."""

    name = "parent-hash"

    def __init__(self, connection: ConnectionInfo, vnodes: int = 64):
        self._rings: dict[str, ConsistentHashRing] = {}
        self._targets = connection.targets
        for kind, targets in connection.targets.items():
            # Ring points hash the target identities (address, provider,
            # name), NOT list positions: adding or removing a database
            # then relocates only its consistent-hashing share of keys
            # (the property storage rescaling relies on).
            self._rings[kind] = ConsistentHashRing(targets, vnodes=vnodes)

    def database_for(self, kind: str, parent_key: bytes) -> DbTarget:
        """The single database holding all children of ``parent_key``."""
        return self._rings[kind].locate(parent_key)

    def databases_for_listing(self, kind: str, parent_key: bytes
                              ) -> list[DbTarget]:
        """Databases to interrogate when listing children: exactly one."""
        return [self.database_for(kind, parent_key)]

    def product_database_for(self, container_key: bytes) -> DbTarget:
        """Products are placed by their container's key."""
        return self.database_for("products", container_key)


class FullKeyPlacement:
    """The rejected alternative: place every key by its own hash.

    Point lookups still hit one database, but listing a container's
    children requires querying all databases and merging (the cost the
    paper's design avoids).
    """

    name = "full-key"

    def __init__(self, connection: ConnectionInfo, vnodes: int = 64):
        self._rings: dict[str, ConsistentHashRing] = {}
        self._targets = connection.targets
        for kind, targets in connection.targets.items():
            self._rings[kind] = ConsistentHashRing(targets, vnodes=vnodes)

    def database_for_key(self, kind: str, key: bytes) -> DbTarget:
        return self._rings[kind].locate(key)

    def databases_for_listing(self, kind: str, parent_key: bytes
                              ) -> list[DbTarget]:
        return list(self._targets[kind])
