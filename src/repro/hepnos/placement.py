"""Placement: which database holds a key (paper section II-C3).

HEPnOS places a container key by consistent-hashing its **parent's**
key, so that (1) all direct children of a container live in a single
database and (2) iterating them uses one database's ordered iterator
instead of interrogating every server and merging.  Products are placed
by the hash of their parent container key, so all products of one event
can be read in a batch from one database.

:class:`FullKeyPlacement` implements the rejected alternative --
consistent hashing of the *full* key -- and exists for the A-place
ablation benchmark: listing a container's children under it requires
querying every database.
"""

from __future__ import annotations

from repro.hepnos.connection import ConnectionInfo, DbTarget
from repro.utils import ConsistentHashRing


class ParentHashPlacement:
    """The paper's strategy: place children by the parent's key."""

    name = "parent-hash"

    def __init__(self, connection: ConnectionInfo, vnodes: int = 64):
        self._rings: dict[str, ConsistentHashRing] = {}
        self._targets = connection.targets
        for kind, targets in connection.targets.items():
            # Ring points hash the target identities (address, provider,
            # name), NOT list positions: adding or removing a database
            # then relocates only its consistent-hashing share of keys
            # (the property storage rescaling relies on).
            self._rings[kind] = ConsistentHashRing(targets, vnodes=vnodes)

    def database_for(self, kind: str, parent_key: bytes) -> DbTarget:
        """The single database holding all children of ``parent_key``."""
        return self._rings[kind].locate(parent_key)

    def databases_for_listing(self, kind: str, parent_key: bytes
                              ) -> list[DbTarget]:
        """Databases to interrogate when listing children: exactly one."""
        return [self.database_for(kind, parent_key)]

    def product_database_for(self, container_key: bytes) -> DbTarget:
        """Products are placed by their container's key."""
        return self.database_for("products", container_key)


class ShardMap:
    """A versioned placement map: an epoch counter over a strategy.

    The datastore consults one of these per key.  Outside a migration
    it simply delegates to its strategy.  During a live rescale the map
    is *migrating*: it holds both the new strategy (``strategy``) and
    the previous epoch's (``previous``).  Writes resolve to the new
    layout immediately (write-forwarding); reads that miss fall back to
    the previous shard (dual-read), which is safe because the migrator
    copies before it erases and every stored value is immutable.

    Epoch transitions:

    - :meth:`advance` enters a migration epoch (``epoch + 1``,
      ``previous`` populated) for a new connection;
    - :meth:`settle` commits it (``epoch + 1``, ``previous`` dropped).

    A client that notices the epoch changed mid-operation raises
    :class:`~repro.errors.ShardMapStale` and retries under the new map.
    """

    def __init__(self, connection: ConnectionInfo, strategy=None,
                 epoch: int = 0, previous=None,
                 previous_connection: ConnectionInfo | None = None):
        self.connection = connection
        self.strategy = strategy if strategy is not None \
            else ParentHashPlacement(connection)
        self.epoch = epoch
        self.previous = previous
        self.previous_connection = previous_connection

    @property
    def name(self) -> str:
        return self.strategy.name

    @property
    def migrating(self) -> bool:
        return self.previous is not None

    # -- epoch transitions --------------------------------------------------

    def advance(self, connection: ConnectionInfo) -> "ShardMap":
        """The migration epoch targeting ``connection``."""
        return ShardMap(connection, epoch=self.epoch + 1,
                        previous=self.strategy,
                        previous_connection=self.connection)

    def settle(self) -> "ShardMap":
        """The committed epoch after a migration finishes."""
        return ShardMap(self.connection, strategy=self.strategy,
                        epoch=self.epoch + 1)

    # -- lookups (same interface as ParentHashPlacement) --------------------

    def database_for(self, kind: str, parent_key: bytes) -> DbTarget:
        return self.strategy.database_for(kind, parent_key)

    def product_database_for(self, container_key: bytes) -> DbTarget:
        return self.strategy.product_database_for(container_key)

    def databases_for_listing(self, kind: str, parent_key: bytes
                              ) -> list[DbTarget]:
        """Databases to interrogate when listing: both shards while a
        migration may have left the parent's children split across the
        old and new layouts."""
        targets = list(self.strategy.databases_for_listing(kind, parent_key))
        prev = self.previous_database_for(kind, parent_key)
        if prev is not None:
            targets.append(prev)
        return targets

    # -- replica groups -----------------------------------------------------

    @property
    def replication(self) -> int:
        """Configured copies per shard (1 = no replication)."""
        return getattr(self.connection, "replication", 1)

    def backup_for(self, kind: str, target: DbTarget) -> DbTarget | None:
        """The backup database for ``target``, or ``None``.

        The backup is the next target of the same kind in connection
        order, preferring one at a *different address* so losing a
        server never takes a shard's whole replica group with it.
        Returns ``None`` when replication is off, when the kind has a
        single database, or when ``target`` is unknown.
        """
        if self.replication < 2:
            return None
        targets = self.connection[kind]
        if target not in targets:
            if (self.previous_connection is not None
                    and target in self.previous_connection[kind]):
                targets = self.previous_connection[kind]
            else:
                return None
        index = targets.index(target)
        count = len(targets)
        fallback = None
        for step in range(1, count):
            candidate = targets[(index + step) % count]
            if candidate.address != target.address:
                return candidate
            if fallback is None and candidate != target:
                fallback = candidate
        return fallback

    def replica_group(self, kind: str, parent_key: bytes) -> list[DbTarget]:
        """Primary plus backup (when any) holding children of the key."""
        primary = self.database_for(kind, parent_key)
        backup = self.backup_for(kind, primary)
        return [primary] if backup is None else [primary, backup]

    # -- dual-read helpers --------------------------------------------------

    def previous_database_for(self, kind: str, parent_key: bytes
                              ) -> DbTarget | None:
        """The pre-migration shard, when it differs from the current one."""
        if self.previous is None:
            return None
        old = self.previous.database_for(kind, parent_key)
        if old == self.strategy.database_for(kind, parent_key):
            return None
        return old

    def previous_product_database_for(self, container_key: bytes
                                      ) -> DbTarget | None:
        return self.previous_database_for("products", container_key)

    # -- observability ------------------------------------------------------

    def shard_id(self, kind: str, target: DbTarget) -> int:
        """A small stable integer identifying ``target`` for trace tags.

        Indices follow the current connection's sorted target list; a
        target only present in the pre-migration connection reports the
        complement of its old index (so old and new shards are
        distinguishable in spans for the duration of the migration).
        """
        targets = self.connection[kind]
        if target in targets:
            return targets.index(target)
        if self.previous_connection is not None:
            old_targets = self.previous_connection[kind]
            if target in old_targets:
                return -1 - old_targets.index(target)
        return -1

    def describe(self) -> dict:
        out = {
            "epoch": self.epoch,
            "migrating": self.migrating,
            "strategy": self.name,
            "shards": {kind: len(targets)
                       for kind, targets in self.connection.targets.items()},
        }
        if self.previous_connection is not None:
            out["previous_shards"] = {
                kind: len(targets)
                for kind, targets in self.previous_connection.targets.items()
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "migrating" if self.migrating else "settled"
        return f"ShardMap(epoch={self.epoch}, {state})"


class FullKeyPlacement:
    """The rejected alternative: place every key by its own hash.

    Point lookups still hit one database, but listing a container's
    children requires querying all databases and merging (the cost the
    paper's design avoids).
    """

    name = "full-key"

    def __init__(self, connection: ConnectionInfo, vnodes: int = 64):
        self._rings: dict[str, ConsistentHashRing] = {}
        self._targets = connection.targets
        for kind, targets in connection.targets.items():
            self._rings[kind] = ConsistentHashRing(targets, vnodes=vnodes)

    def database_for_key(self, kind: str, key: bytes) -> DbTarget:
        return self._rings[kind].locate(key)

    def databases_for_listing(self, kind: str, parent_key: bytes
                              ) -> list[DbTarget]:
        return list(self._targets[kind])
