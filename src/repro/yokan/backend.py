"""The backend interface every Yokan storage engine implements."""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import AddressError, ConfigError, DatabaseClosed, KeyNotFound

#: Registered backend kinds, populated by :func:`register_backend`.
BACKEND_KINDS: dict[str, type] = {}


def register_backend(kind: str):
    """Class decorator associating a backend class with its config name."""

    def decorate(cls: type) -> type:
        BACKEND_KINDS[kind] = cls
        return cls

    return decorate


def open_backend(kind: str, **config) -> "Backend":
    """Instantiate a backend by kind name (``map``, ``lsm``, ``btree``).

    A ``wal_path`` in the config wraps the backend in a
    :class:`~repro.yokan.backends.wal.DurableBackend`: mutations are
    CRC-framed into a write-ahead log (checkpointed at
    ``wal_checkpoint_bytes``) and replayed here on reopen, so a
    restarted server recovers state even when the inner backend is
    volatile.
    """
    wal_path = config.pop("wal_path", None)
    wal_checkpoint_bytes = config.pop("wal_checkpoint_bytes", None)
    wal_sync = config.pop("wal_sync", False)
    try:
        cls = BACKEND_KINDS[kind]
    except KeyError:
        raise ConfigError(
            f"unknown backend kind {kind!r}; known: {sorted(BACKEND_KINDS)}"
        ) from None
    backend = cls(**config)
    if wal_path:
        from repro.yokan.backends.wal import DurableBackend

        kwargs = {"sync": bool(wal_sync)}
        if wal_checkpoint_bytes is not None:
            kwargs["checkpoint_bytes"] = int(wal_checkpoint_bytes)
        backend = DurableBackend(backend, wal_path, **kwargs)
    return backend


def prefix_upper_bound(prefix: bytes) -> Optional[bytes]:
    """The smallest key greater than every key with ``prefix``.

    ``None`` when no such bound exists (empty prefix or all-0xFF), in
    which case a prefix scan is unbounded to the right.
    """
    trimmed = prefix.rstrip(b"\xff")
    if not trimmed:
        return None
    return trimmed[:-1] + bytes([trimmed[-1] + 1])


class Backend(abc.ABC):
    """An ordered byte-key / byte-value store.

    Iteration order is bytewise-lexicographic on keys, which combined
    with big-endian number encoding gives HEPnOS its sorted runs,
    subruns, and events (paper section II-C3).
    """

    def __init__(self) -> None:
        self._closed = False
        self._crashed = False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._closed = True

    def crash(self) -> None:
        """Simulate losing the process: drop state without flushing.

        Unlike :meth:`close`, buffered writes are *not* made durable —
        a durable backend must recover from its log, a volatile one
        genuinely loses everything.
        """
        self._closed = True
        self._crashed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._crashed:
            # A crashed backend means the process died: any in-flight
            # handler racing the crash must look like a dead server to
            # the client (retryable), not a clean database shutdown.
            raise AddressError("backend crashed")
        if self._closed:
            raise DatabaseClosed("backend is closed")

    def flush(self) -> None:
        """Force durability of buffered writes (no-op by default)."""
        self._check_open()

    # -- required primitives -------------------------------------------------

    @abc.abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""

    @abc.abstractmethod
    def get(self, key: bytes) -> bytes:
        """Return the value for ``key`` or raise :class:`KeyNotFound`."""

    @abc.abstractmethod
    def exists(self, key: bytes) -> bool:
        """Whether ``key`` is present."""

    @abc.abstractmethod
    def erase(self, key: bytes) -> None:
        """Remove ``key``; raise :class:`KeyNotFound` if absent."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of live keys."""

    @abc.abstractmethod
    def scan(
        self,
        start: bytes = b"",
        inclusive: bool = True,
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Ordered iteration of (key, value) from ``start``."""

    # -- derived operations --------------------------------------------------

    def get_or_none(self, key: bytes) -> Optional[bytes]:
        try:
            return self.get(key)
        except KeyNotFound:
            return None

    def put_multi(self, pairs: Iterable[Tuple[bytes, bytes]]) -> int:
        """Insert many pairs; returns the count (batch RPC fast path)."""
        count = 0
        for key, value in pairs:
            self.put(key, value)
            count += 1
        return count

    def get_multi(self, keys: Sequence[bytes]) -> list[Optional[bytes]]:
        """Fetch many keys; missing keys yield ``None``."""
        return [self.get_or_none(key) for key in keys]

    def exists_multi(self, keys: Sequence[bytes]) -> list[bool]:
        return [self.exists(key) for key in keys]

    def erase_multi(self, keys: Sequence[bytes]) -> int:
        """Remove many keys; missing keys are skipped. Returns the count
        actually removed (batch RPC fast path for migration)."""
        removed = 0
        for key in keys:
            try:
                self.erase(key)
                removed += 1
            except KeyNotFound:
                continue
        return removed

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        for key, value in self.scan(prefix):
            if not key.startswith(prefix):
                return
            yield key, value

    def list_keys(
        self,
        prefix: bytes = b"",
        start_after: bytes = b"",
        limit: int = 0,
    ) -> list[bytes]:
        """Keys with ``prefix``, strictly after ``start_after``.

        ``limit`` of 0 means unlimited.  This is the primitive the
        HEPnOS container iterators are built on.
        """
        out: list[bytes] = []
        if start_after and start_after >= prefix:
            iterator = self.scan(start_after, inclusive=False)
        else:
            iterator = self.scan(prefix, inclusive=True)
        for key, _ in iterator:
            if not key.startswith(prefix):
                # Scan starts at >= prefix, so a non-matching key is past
                # the end of the prefix range.
                break
            out.append(key)
            if limit and len(out) >= limit:
                break
        return out

    def count_prefix(self, prefix: bytes) -> int:
        return sum(1 for _ in self.scan_prefix(prefix))
