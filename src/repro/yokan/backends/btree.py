"""A copy-on-write persistent B+tree backend: the BerkeleyDB stand-in.

Design (LMDB/BoltDB flavored):

- nodes are immutable records in an append-only data file; a node's id
  is its file offset;
- mutations copy the root-to-leaf path, appending new nodes, then
  atomically swap the header (root pointer + entry count) on commit;
- a crash between append and header swap leaves the previous, intact
  tree visible -- recovery is free;
- deletion is lazy (no rebalancing); :meth:`rebuild` compacts the file
  and restores node occupancy.

``commit_every`` > 1 amortizes header swaps over several mutations, at
the cost of losing the uncommitted tail on a crash (like BerkeleyDB
with deferred sync).
"""

from __future__ import annotations

import bisect
import json
import os
import struct
import zlib
from collections import OrderedDict
from typing import Iterator, Optional, Tuple

from repro.errors import CorruptionError, KeyNotFound
from repro.serial import dumps, loads
from repro.yokan.backend import Backend, register_backend

_REC_HEADER = struct.Struct("<II")  # length, crc32
_LEAF, _INNER = 0, 1


class _Node:
    __slots__ = ("kind", "keys", "payload")

    def __init__(self, kind: int, keys: list, payload: list):
        self.kind = kind
        self.keys = keys      # sorted separator keys (inner) or entry keys (leaf)
        self.payload = payload  # child offsets (inner) or values (leaf)

    @property
    def is_leaf(self) -> bool:
        return self.kind == _LEAF


@register_backend("btree")
class BTreeBackend(Backend):
    """Persistent ordered store with copy-on-write B+tree pages."""

    def __init__(self, path: str, order: int = 64, commit_every: int = 1,
                 cache_nodes: int = 4096, **_unused):
        super().__init__()
        if order < 4:
            raise ValueError("order must be >= 4")
        self.path = path
        self.order = order
        self.commit_every = max(1, commit_every)
        self._cache_limit = cache_nodes
        os.makedirs(path, exist_ok=True)
        self._data_path = os.path.join(path, "btree.dat")
        self._head_path = os.path.join(path, "btree.head")
        self._cache: "OrderedDict[int, _Node]" = OrderedDict()
        self._root: Optional[int] = None
        self._count = 0
        self._pending = 0
        self._load_header()
        self._data = open(self._data_path, "ab")

    # -- header ---------------------------------------------------------

    def _load_header(self) -> None:
        if os.path.exists(self._head_path):
            with open(self._head_path) as f:
                head = json.load(f)
            self._root = head["root"]
            self._count = head["count"]
        else:
            self._root = None
            self._count = 0
        if not os.path.exists(self._data_path):
            open(self._data_path, "wb").close()

    def _commit(self, force: bool = False) -> None:
        self._pending += 1
        if not force and self._pending < self.commit_every:
            return
        self._pending = 0
        self._data.flush()
        os.fsync(self._data.fileno())
        tmp = self._head_path + ".tmp"
        with open(tmp, "w") as f:
            json.dump({"root": self._root, "count": self._count}, f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self._head_path)

    # -- node io ---------------------------------------------------------

    def _append_node(self, node: _Node) -> int:
        payload = dumps((node.kind, node.keys, node.payload))
        offset = self._data.tell()
        self._data.write(_REC_HEADER.pack(len(payload), zlib.crc32(payload)))
        self._data.write(payload)
        self._cache_put(offset, node)
        return offset

    def _read_node(self, offset: int) -> _Node:
        node = self._cache.get(offset)
        if node is not None:
            self._cache.move_to_end(offset)
            return node
        # Reads may hit the tail still in the write buffer.
        self._data.flush()
        with open(self._data_path, "rb") as f:
            f.seek(offset)
            header = f.read(_REC_HEADER.size)
            if len(header) < _REC_HEADER.size:
                raise CorruptionError(f"truncated node header at {offset}")
            length, crc = _REC_HEADER.unpack(header)
            payload = f.read(length)
        if len(payload) < length or zlib.crc32(payload) != crc:
            raise CorruptionError(f"corrupt node at {offset}")
        kind, keys, values = loads(payload)
        node = _Node(kind, list(keys), list(values))
        self._cache_put(offset, node)
        return node

    def _cache_put(self, offset: int, node: _Node) -> None:
        existing = self._cache.pop(offset, None)
        if existing is None:
            while len(self._cache) >= self._cache_limit:
                self._cache.popitem(last=False)
        self._cache[offset] = node

    # -- tree ops ---------------------------------------------------------

    def _find_leaf(self, key: bytes) -> tuple[list[tuple[int, int]], _Node]:
        """Descend to the leaf for ``key``.

        Returns (path, leaf) where path is [(node_offset, child_index)]
        from root down (excluding the leaf itself).
        """
        path: list[tuple[int, int]] = []
        offset = self._root
        node = self._read_node(offset)
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            path.append((offset, idx))
            offset = node.payload[idx]
            node = self._read_node(offset)
        path.append((offset, -1))
        return path, node

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        key, value = bytes(key), bytes(value)
        if self._root is None:
            self._root = self._append_node(_Node(_LEAF, [key], [value]))
            self._count = 1
            self._commit()
            return
        path, leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        new_keys = list(leaf.keys)
        new_vals = list(leaf.payload)
        if idx < len(new_keys) and new_keys[idx] == key:
            new_vals[idx] = value
        else:
            new_keys.insert(idx, key)
            new_vals.insert(idx, value)
            self._count += 1
        self._replace_path(path, _Node(_LEAF, new_keys, new_vals))
        self._commit()

    def _replace_path(self, path: list[tuple[int, int]], new_leaf: _Node) -> None:
        """Copy-on-write the descent path, splitting overflowing nodes."""
        # carry: list of (separator_key, node_offset) replacing one child.
        node = new_leaf
        carry: list[tuple[Optional[bytes], int]]
        if len(node.keys) > self.order:
            mid = len(node.keys) // 2
            left = _Node(node.kind, node.keys[:mid], node.payload[:mid])
            right = _Node(node.kind, node.keys[mid:], node.payload[mid:])
            sep = right.keys[0]
            carry = [(None, self._append_node(left)), (sep, self._append_node(right))]
        else:
            carry = [(None, self._append_node(node))]

        for offset, child_idx in reversed(path[:-1]):
            parent = self._read_node(offset)
            keys = list(parent.keys)
            children = list(parent.payload)
            # Replace child at child_idx with the carried node(s).
            children[child_idx : child_idx + 1] = [c for _, c in carry]
            extra_seps = [sep for sep, _ in carry[1:]]
            keys[child_idx:child_idx] = extra_seps
            node = _Node(_INNER, keys, children)
            if len(children) > self.order:
                mid = len(children) // 2
                sep = keys[mid - 1]
                left = _Node(_INNER, keys[: mid - 1], children[:mid])
                right = _Node(_INNER, keys[mid:], children[mid:])
                carry = [
                    (None, self._append_node(left)),
                    (sep, self._append_node(right)),
                ]
            else:
                carry = [(None, self._append_node(node))]

        if len(carry) == 1:
            self._root = carry[0][1]
        else:
            seps = [sep for sep, _ in carry[1:]]
            children = [c for _, c in carry]
            self._root = self._append_node(_Node(_INNER, seps, children))

    def get(self, key: bytes) -> bytes:
        self._check_open()
        if self._root is None:
            raise KeyNotFound(repr(key))
        _, leaf = self._find_leaf(bytes(key))
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.payload[idx]
        raise KeyNotFound(repr(key))

    def exists(self, key: bytes) -> bool:
        try:
            self.get(key)
            return True
        except KeyNotFound:
            return False

    def erase(self, key: bytes) -> None:
        self._check_open()
        key = bytes(key)
        if self._root is None:
            raise KeyNotFound(repr(key))
        path, leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            raise KeyNotFound(repr(key))
        new_keys = list(leaf.keys)
        new_vals = list(leaf.payload)
        del new_keys[idx]
        del new_vals[idx]
        self._count -= 1
        # Lazy deletion: the leaf may become empty; scans skip it.
        self._replace_path(path, _Node(_LEAF, new_keys, new_vals))
        self._commit()

    def __len__(self) -> int:
        return self._count

    def scan(self, start: bytes = b"", inclusive: bool = True
             ) -> Iterator[Tuple[bytes, bytes]]:
        self._check_open()
        if self._root is None:
            return
        # Iterative DFS from the lower bound.
        stack: list[tuple[int, int]] = []  # (node offset, next child index)
        offset = self._root
        node = self._read_node(offset)
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, start)
            stack.append((offset, idx + 1))
            offset = node.payload[idx]
            node = self._read_node(offset)
        # Emit from this leaf, then walk the stack rightward.
        idx = bisect.bisect_left(node.keys, start)
        while True:
            for i in range(idx, len(node.keys)):
                key = node.keys[i]
                if key < start or (not inclusive and key == start):
                    continue
                yield key, node.payload[i]
            # Advance to the next leaf.
            while stack:
                parent_offset, child_idx = stack.pop()
                parent = self._read_node(parent_offset)
                if child_idx < len(parent.payload):
                    stack.append((parent_offset, child_idx + 1))
                    offset = parent.payload[child_idx]
                    node = self._read_node(offset)
                    while not node.is_leaf:
                        stack.append((offset, 1))
                        offset = node.payload[0]
                        node = self._read_node(offset)
                    idx = 0
                    break
            else:
                return

    # -- maintenance ---------------------------------------------------------

    def rebuild(self) -> None:
        """Compact the data file: rewrite the tree bottom-up, dense."""
        self._check_open()
        entries = list(self.scan())
        self._data.close()
        os.unlink(self._data_path)
        self._cache.clear()
        self._data = open(self._data_path, "ab")
        self._root = None
        self._count = 0
        if entries:
            self._bulk_load(entries)
        self._commit(force=True)

    def _bulk_load(self, entries: list[Tuple[bytes, bytes]]) -> None:
        """Build a dense tree from sorted entries."""
        fanout = self.order
        level: list[tuple[bytes, int]] = []  # (first key, offset)
        for i in range(0, len(entries), fanout):
            chunk = entries[i : i + fanout]
            node = _Node(_LEAF, [k for k, _ in chunk], [v for _, v in chunk])
            level.append((chunk[0][0], self._append_node(node)))
        while len(level) > 1:
            next_level: list[tuple[bytes, int]] = []
            for i in range(0, len(level), fanout):
                chunk = level[i : i + fanout]
                seps = [k for k, _ in chunk[1:]]
                children = [off for _, off in chunk]
                node = _Node(_INNER, seps, children)
                next_level.append((chunk[0][0], self._append_node(node)))
            level = next_level
        self._root = level[0][1]
        self._count = len(entries)

    @property
    def file_bytes(self) -> int:
        """Current data-file size (grows until :meth:`rebuild`)."""
        self._data.flush()
        return os.path.getsize(self._data_path)

    def flush(self) -> None:
        self._check_open()
        self._commit(force=True)

    def close(self) -> None:
        if not self.closed:
            self._commit(force=True)
            self._data.close()
            super().close()
