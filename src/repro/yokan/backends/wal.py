"""Durability wrapper: write-ahead log + checkpoints over any backend.

``DurableBackend`` wraps an inner :class:`Backend` (typically the
in-memory ``map``) and makes it crash-recoverable:

- every mutating verb appends one CRC-framed record to a per-database
  WAL file *before* the operation is acknowledged;
- when the log grows past ``checkpoint_bytes`` the whole inner backend
  is snapshotted to an atomic checkpoint file (tmp + fsync +
  ``os.replace``) and the log is truncated;
- on open, the checkpoint (if any) is loaded and the WAL replayed on
  top of it.  Replay stops cleanly at a torn tail: a record whose
  payload is short or whose CRC mismatches marks the end of the
  recoverable history, everything before it is kept.

Record framing matches the LSM backend's WAL: a ``<II`` header
(payload length, crc32) followed by the payload.  Payload opcodes:

- ``P``: single put    — ``P u32(klen) key value``
- ``D``: single erase  — ``D key``
- ``M``: batched puts  — ``M u32(n) (u32(klen) u32(vlen) key value)*``
- ``E``: batched erase — ``E u32(n) (u32(klen) key)*``

Batch verbs log one record per batch, so the hot ingest path (write
batches flushing via ``put_multi``) pays one frame per flush, not one
per key.  Replay is idempotent: erases of absent keys are skipped, so
re-replaying after a crash during checkpointing is safe.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import CorruptionError, KeyNotFound
from repro.yokan.backend import Backend

_REC_HEADER = struct.Struct("<II")  # payload length, crc32
_U32 = struct.Struct("<I")
_CKPT_MAGIC = b"CKPT0001"
_CKPT_FOOTER = struct.Struct("<QI")  # entry count, crc32 of entry region

#: Default checkpoint cadence: snapshot once the WAL passes this size.
DEFAULT_CHECKPOINT_BYTES = 4 * 1024 * 1024


@dataclass
class DurabilityStats:
    """Counters surfaced by ``DurableBackend.stats``."""

    wal_records: int = 0
    wal_bytes: int = 0
    checkpoints: int = 0
    checkpoint_bytes: int = 0
    replayed_records: int = 0
    replayed_keys: int = 0
    replay_seconds: float = 0.0
    torn_tail_bytes: int = 0
    checkpoint_loaded: bool = False


def checkpoint_path(wal_path: str) -> str:
    return wal_path + ".ckpt"


def _frame(payload: bytes) -> bytes:
    return _REC_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def read_wal_records(path: str) -> Tuple[list[bytes], int]:
    """All whole records in the WAL at ``path``.

    Returns ``(payloads, torn_bytes)`` where ``torn_bytes`` counts the
    trailing bytes that did not form a complete, CRC-valid record (a
    torn tail from a crash mid-append).  Never raises on a torn tail —
    durability means recovering *up to* the last whole record.
    """
    payloads: list[bytes] = []
    if not os.path.exists(path):
        return payloads, 0
    with open(path, "rb") as f:
        data = f.read()
    offset = 0
    while offset + _REC_HEADER.size <= len(data):
        length, crc = _REC_HEADER.unpack_from(data, offset)
        start = offset + _REC_HEADER.size
        payload = data[start:start + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            break
        payloads.append(payload)
        offset = start + length
    return payloads, len(data) - offset


def _decode_record(payload: bytes) -> Iterator[Tuple[bytes, Optional[bytes]]]:
    """Yield (key, value-or-None-for-erase) mutations from one record."""
    op = payload[:1]
    if op == b"P":
        (klen,) = _U32.unpack_from(payload, 1)
        key = payload[5:5 + klen]
        yield key, payload[5 + klen:]
    elif op == b"D":
        yield payload[1:], None
    elif op == b"M":
        (count,) = _U32.unpack_from(payload, 1)
        offset = 5
        for _ in range(count):
            klen, vlen = struct.unpack_from("<II", payload, offset)
            offset += 8
            key = payload[offset:offset + klen]
            offset += klen
            value = payload[offset:offset + vlen]
            offset += vlen
            yield key, value
    elif op == b"E":
        (count,) = _U32.unpack_from(payload, 1)
        offset = 5
        for _ in range(count):
            (klen,) = _U32.unpack_from(payload, offset)
            offset += 4
            yield payload[offset:offset + klen], None
            offset += klen
    else:
        raise CorruptionError(f"unknown WAL opcode {op!r}")


def _write_checkpoint(path: str, pairs: Iterable[Tuple[bytes, bytes]]) -> int:
    """Atomically snapshot ``pairs`` to ``path``; returns bytes written."""
    tmp = path + ".tmp"
    count = 0
    crc = 0
    with open(tmp, "wb") as f:
        f.write(_CKPT_MAGIC)
        for key, value in pairs:
            entry = struct.pack("<II", len(key), len(value)) + key + value
            crc = zlib.crc32(entry, crc)
            f.write(entry)
            count += 1
        f.write(_CKPT_FOOTER.pack(count, crc))
        f.flush()
        os.fsync(f.fileno())
        size = f.tell()
    os.replace(tmp, path)
    return size


def _read_checkpoint(path: str) -> Optional[list[Tuple[bytes, bytes]]]:
    """Entries from the checkpoint at ``path`` (None when absent)."""
    if not os.path.exists(path):
        return None
    with open(path, "rb") as f:
        data = f.read()
    if len(data) < len(_CKPT_MAGIC) + _CKPT_FOOTER.size:
        raise CorruptionError(f"{path}: checkpoint truncated")
    if data[:len(_CKPT_MAGIC)] != _CKPT_MAGIC:
        raise CorruptionError(f"{path}: bad checkpoint magic")
    count, crc = _CKPT_FOOTER.unpack_from(data, len(data) - _CKPT_FOOTER.size)
    region = data[len(_CKPT_MAGIC):len(data) - _CKPT_FOOTER.size]
    if zlib.crc32(region) != crc:
        raise CorruptionError(f"{path}: checkpoint CRC mismatch")
    entries: list[Tuple[bytes, bytes]] = []
    offset = 0
    for _ in range(count):
        klen, vlen = struct.unpack_from("<II", region, offset)
        offset += 8
        key = region[offset:offset + klen]
        offset += klen
        value = region[offset:offset + vlen]
        offset += vlen
        entries.append((key, value))
    return entries


class DurableBackend(Backend):
    """WAL + checkpoint durability over any inner backend.

    Not registered as its own kind: ``open_backend`` wraps whatever
    kind is configured whenever the database config carries a
    ``wal_path``.
    """

    def __init__(
        self,
        inner: Backend,
        wal_path: str,
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        sync: bool = False,
    ):
        super().__init__()
        self.inner = inner
        self.wal_path = wal_path
        self.ckpt_path = checkpoint_path(wal_path)
        self.checkpoint_bytes = int(checkpoint_bytes)
        self.sync = sync
        self.stats = DurabilityStats()
        parent = os.path.dirname(wal_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._recover()
        self._wal = open(wal_path, "ab")
        self._wal_size = self._wal.tell()

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> None:
        start = time.perf_counter()
        entries = _read_checkpoint(self.ckpt_path)
        if entries is not None:
            self.stats.checkpoint_loaded = True
            self.inner.put_multi(entries)
            self.stats.replayed_keys += len(entries)
        payloads, torn = read_wal_records(self.wal_path)
        self.stats.torn_tail_bytes = torn
        if torn:
            # Drop the torn tail so new appends start at a record edge.
            whole = os.path.getsize(self.wal_path) - torn
            with open(self.wal_path, "ab") as f:
                f.truncate(whole)
        for payload in payloads:
            self.stats.replayed_records += 1
            for key, value in _decode_record(payload):
                self.stats.replayed_keys += 1
                if value is None:
                    try:
                        self.inner.erase(key)
                    except KeyNotFound:
                        pass  # idempotent re-replay
                else:
                    self.inner.put(key, value)
        self.stats.replay_seconds = time.perf_counter() - start

    # -- WAL append ----------------------------------------------------------

    def _append(self, payload: bytes) -> None:
        frame = _frame(payload)
        self._wal.write(frame)
        # Flush to the OS so a simulated crash (which abandons the file
        # object without a clean close) still finds the record on disk.
        self._wal.flush()
        if self.sync:
            os.fsync(self._wal.fileno())
        self._wal_size += len(frame)
        self.stats.wal_records += 1
        self.stats.wal_bytes += len(frame)

    def _maybe_checkpoint(self) -> None:
        """Auto-checkpoint once the WAL outgrows the cadence.

        Called *after* the inner backend applied the mutation the last
        record describes: checkpointing from ``_append`` would snapshot
        the pre-mutation state and then truncate away the only record
        of the in-flight write.
        """
        if self._wal_size >= self.checkpoint_bytes:
            self.checkpoint()

    def checkpoint(self) -> None:
        """Snapshot the inner backend and truncate the WAL."""
        self._check_open()
        self.inner.flush()
        size = _write_checkpoint(self.ckpt_path, self.inner.scan())
        self._wal.close()
        self._wal = open(self.wal_path, "wb")
        self._wal_size = 0
        self.stats.checkpoints += 1
        self.stats.checkpoint_bytes += size

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        self._check_open()
        self._wal.flush()
        os.fsync(self._wal.fileno())
        self.inner.flush()

    def close(self) -> None:
        if not self._closed:
            self._wal.flush()
            self._wal.close()
            self.inner.close()
        super().close()

    def crash(self) -> None:
        """Simulate power loss: abandon state without flushing buffers.

        Every record already reached the OS via the per-append flush,
        so closing the file here changes nothing on disk -- the WAL is
        frozen exactly as the "dying" process left it.  (Closing the
        raw fd instead would leak it to Python's file object, whose
        finalizer could later close a reused descriptor number owned by
        a different backend.)
        """
        self._closed = True
        self._crashed = True
        try:
            self._wal.close()
        except OSError:
            pass
        crash = getattr(self.inner, "crash", None)
        if crash is not None:
            crash()

    # -- mutating verbs (logged) ---------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        self._append(b"P" + _U32.pack(len(key)) + bytes(key) + bytes(value))
        self.inner.put(key, value)
        self._maybe_checkpoint()

    def erase(self, key: bytes) -> None:
        self._check_open()
        self.inner.erase(key)  # raises KeyNotFound before logging
        self._append(b"D" + bytes(key))
        self._maybe_checkpoint()

    def put_multi(self, pairs: Iterable[Tuple[bytes, bytes]]) -> int:
        self._check_open()
        pairs = [(bytes(k), bytes(v)) for k, v in pairs]
        if not pairs:
            return 0
        parts = [b"M", _U32.pack(len(pairs))]
        for key, value in pairs:
            parts.append(struct.pack("<II", len(key), len(value)))
            parts.append(key)
            parts.append(value)
        self._append(b"".join(parts))
        stored = self.inner.put_multi(pairs)
        self._maybe_checkpoint()
        return stored

    def erase_multi(self, keys: Sequence[bytes]) -> int:
        self._check_open()
        keys = [bytes(k) for k in keys]
        if not keys:
            return 0
        parts = [b"E", _U32.pack(len(keys))]
        for key in keys:
            parts.append(_U32.pack(len(key)))
            parts.append(key)
        self._append(b"".join(parts))
        removed = self.inner.erase_multi(keys)
        self._maybe_checkpoint()
        return removed

    # -- read verbs (delegated) ----------------------------------------------

    def get(self, key: bytes) -> bytes:
        self._check_open()
        return self.inner.get(key)

    def exists(self, key: bytes) -> bool:
        self._check_open()
        return self.inner.exists(key)

    def __len__(self) -> int:
        return len(self.inner)

    def scan(self, start: bytes = b"", inclusive: bool = True
             ) -> Iterator[Tuple[bytes, bytes]]:
        self._check_open()
        return self.inner.scan(start, inclusive=inclusive)

    def get_multi(self, keys: Sequence[bytes]) -> list[Optional[bytes]]:
        self._check_open()
        return self.inner.get_multi(keys)

    def exists_multi(self, keys: Sequence[bytes]) -> list[bool]:
        self._check_open()
        return self.inner.exists_multi(keys)

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        self._check_open()
        return self.inner.scan_prefix(prefix)

    def list_keys(
        self,
        prefix: bytes = b"",
        start_after: bytes = b"",
        limit: int = 0,
    ) -> list[bytes]:
        self._check_open()
        return self.inner.list_keys(prefix, start_after, limit)

    def count_prefix(self, prefix: bytes) -> int:
        self._check_open()
        return self.inner.count_prefix(prefix)

    def __getattr__(self, name: str):
        # Surface inner-backend extras (approximate_bytes, LSM stats...).
        if name == "inner":  # not yet bound during __init__
            raise AttributeError(name)
        return getattr(self.inner, name)
