"""A log-structured merge-tree backend: the paper's RocksDB stand-in.

Design (classic LSM, size-tiered full compaction):

- writes append to a checksummed write-ahead log, then land in a
  skip-list *memtable*;
- when the memtable exceeds ``memtable_bytes`` it is flushed to an
  immutable, sorted *SSTable* file with a sparse index and a bloom
  filter;
- reads consult the memtable, then SSTables newest-to-oldest, skipping
  tables whose bloom filter excludes the key;
- deletes write *tombstones*, dropped at compaction;
- when more than ``compaction_trigger`` SSTables accumulate they are
  merged into one.

The backend tracks read/write amplification counters so benchmarks can
show *why* the in-memory backend wins at scale in Figure 2.
"""

from __future__ import annotations

import heapq
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from repro.errors import CorruptionError, KeyNotFound
from repro.utils import SkipListMap, fnv1a_64, mix64
from repro.yokan.backend import Backend, prefix_upper_bound, register_backend

_WAL_HEADER = struct.Struct("<II")  # payload length, crc32
_SST_MAGIC = b"SSTB0001"
_FOOTER_LEN = struct.Struct("<Q")

#: Sentinel stored in the memtable for deleted keys.
_TOMBSTONE = object()


class BloomFilter:
    """A fixed-size bloom filter over byte keys."""

    def __init__(self, num_bits: int, num_hashes: int = 4,
                 bits: Optional[bytearray] = None):
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bits if bits is not None else bytearray((num_bits + 7) // 8)

    @classmethod
    def for_capacity(cls, n: int, bits_per_key: int = 10) -> "BloomFilter":
        return cls(max(64, n * bits_per_key))

    def _positions(self, key: bytes) -> Iterator[int]:
        # Double hashing: h1 + i*h2 simulates k independent hashes.
        h1 = fnv1a_64(key)
        h2 = mix64(h1) | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)

    def __contains__(self, key: bytes) -> bool:
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(key)
        )

    def to_bytes(self) -> bytes:
        return struct.pack("<QI", self.num_bits, self.num_hashes) + bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        num_bits, num_hashes = struct.unpack_from("<QI", data)
        return cls(num_bits, num_hashes, bytearray(data[12:]))


@dataclass
class LSMStats:
    """Amplification and hit-rate counters."""

    wal_bytes: int = 0
    flushes: int = 0
    flushed_bytes: int = 0
    compactions: int = 0
    compacted_bytes: int = 0
    gets: int = 0
    memtable_hits: int = 0
    sstable_reads: int = 0
    bloom_skips: int = 0
    #: entries pulled through the scan merge heap (bounded prefix scans
    #: should keep this proportional to the prefix range, not the store)
    scan_entries: int = 0

    @property
    def write_amplification(self) -> float:
        logical = self.wal_bytes or 1
        return (self.wal_bytes + self.flushed_bytes + self.compacted_bytes) / logical


class SSTable:
    """One immutable sorted table on disk."""

    #: Every ``INDEX_INTERVAL``-th key lands in the sparse index.
    INDEX_INTERVAL = 16

    def __init__(self, path: str):
        self.path = path
        with open(path, "rb") as f:
            magic = f.read(len(_SST_MAGIC))
            if magic != _SST_MAGIC:
                raise CorruptionError(f"{path}: bad SSTable magic")
            f.seek(-_FOOTER_LEN.size, os.SEEK_END)
            end_of_footer = f.tell()
            (footer_size,) = _FOOTER_LEN.unpack(f.read(_FOOTER_LEN.size))
            f.seek(end_of_footer - footer_size)
            footer = json.loads(f.read(footer_size).decode())
        self.num_entries: int = footer["n"]
        self.data_end: int = footer["data_end"]
        self.index: list[tuple[bytes, int]] = [
            (bytes.fromhex(k), off) for k, off in footer["index"]
        ]
        self.bloom = BloomFilter.from_bytes(bytes.fromhex(footer["bloom"]))
        self.min_key = bytes.fromhex(footer["min"]) if footer["min"] else b""
        self.max_key = bytes.fromhex(footer["max"]) if footer["max"] else b""

    @staticmethod
    def write(path: str, entries: Iterator[Tuple[bytes, Optional[bytes]]],
              expected_count: int) -> int:
        """Write sorted ``entries`` (value ``None`` = tombstone) to ``path``.

        Returns the number of data bytes written.
        """
        bloom = BloomFilter.for_capacity(max(expected_count, 1))
        index: list[tuple[str, int]] = []
        n = 0
        min_key = max_key = None
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(_SST_MAGIC)
            for key, value in entries:
                offset = f.tell()
                if n % SSTable.INDEX_INTERVAL == 0:
                    index.append((key.hex(), offset))
                bloom.add(key)
                if min_key is None:
                    min_key = key
                max_key = key
                if value is None:
                    f.write(struct.pack("<II", len(key), 0xFFFFFFFF))
                    f.write(key)
                else:
                    f.write(struct.pack("<II", len(key), len(value)))
                    f.write(key)
                    f.write(value)
                n += 1
            data_end = f.tell()
            footer = json.dumps({
                "n": n,
                "data_end": data_end,
                "index": index,
                "bloom": bloom.to_bytes().hex(),
                "min": min_key.hex() if min_key is not None else "",
                "max": max_key.hex() if max_key is not None else "",
            }).encode()
            f.write(footer)
            f.write(_FOOTER_LEN.pack(len(footer)))
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        return data_end

    def _read_entry(self, f) -> Optional[Tuple[bytes, Optional[bytes]]]:
        header = f.read(8)
        if len(header) < 8:
            return None
        klen, vlen = struct.unpack("<II", header)
        key = f.read(klen)
        if vlen == 0xFFFFFFFF:
            return key, None
        return key, f.read(vlen)

    def get(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """(found, value) -- value ``None`` with found=True is a tombstone."""
        if self.num_entries == 0 or not self.min_key <= key <= self.max_key:
            return False, None
        if key not in self.bloom:
            return False, None
        # Bisect the sparse index for the last offset whose key <= key.
        lo, hi = 0, len(self.index) - 1
        start = self.index[0][1]
        while lo <= hi:
            mid = (lo + hi) // 2
            if self.index[mid][0] <= key:
                start = self.index[mid][1]
                lo = mid + 1
            else:
                hi = mid - 1
        with open(self.path, "rb") as f:
            f.seek(start)
            for _ in range(self.INDEX_INTERVAL):
                if f.tell() >= self.data_end:
                    break
                entry = self._read_entry(f)
                if entry is None:
                    break
                ekey, value = entry
                if ekey == key:
                    return True, value
                if ekey > key:
                    break
        return False, None

    def scan(self, start: bytes = b"", end: Optional[bytes] = None
             ) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """Ordered iteration including tombstones, from ``start``.

        With ``end``, iteration (and the underlying file reads) stop at
        the first key ``>= end`` -- prefix-bounded scans never pay for
        the rest of the sorted run.
        """
        if self.num_entries == 0:
            return
        if end is not None and self.min_key >= end:
            return
        # Seek via the sparse index.
        offset = self.index[0][1]
        for ikey, ioff in self.index:
            if ikey <= start:
                offset = ioff
            else:
                break
        with open(self.path, "rb") as f:
            f.seek(offset)
            while f.tell() < self.data_end:
                entry = self._read_entry(f)
                if entry is None:
                    break
                key, value = entry
                if key < start:
                    continue
                if end is not None and key >= end:
                    return
                yield key, value


@register_backend("lsm")
class LSMBackend(Backend):
    """The persistent LSM backend (``"lsm"``, standing in for RocksDB)."""

    def __init__(self, path: str, memtable_bytes: int = 4 * 1024 * 1024,
                 compaction_trigger: int = 4, sync_wal: bool = False, **_unused):
        super().__init__()
        self.path = path
        self.memtable_bytes = memtable_bytes
        self.compaction_trigger = compaction_trigger
        self.sync_wal = sync_wal
        self.stats = LSMStats()
        os.makedirs(path, exist_ok=True)
        self._manifest_path = os.path.join(path, "MANIFEST.json")
        self._wal_path = os.path.join(path, "wal.log")
        self._memtable = SkipListMap()
        self._mem_bytes = 0
        self._sstables: list[SSTable] = []  # oldest first
        self._next_table_id = 0
        # Live-key count is recomputed lazily: keeping it exact on every
        # put would force a read-before-write (which RocksDB avoids too).
        self._live_keys: Optional[int] = None
        self._recover()
        self._wal = open(self._wal_path, "ab")

    # -- recovery ---------------------------------------------------------

    def _recover(self) -> None:
        if os.path.exists(self._manifest_path):
            with open(self._manifest_path) as f:
                manifest = json.load(f)
            self._next_table_id = manifest["next_table_id"]
            for name in manifest["tables"]:
                self._sstables.append(SSTable(os.path.join(self.path, name)))
        if os.path.exists(self._wal_path):
            self._replay_wal()

    def _replay_wal(self) -> None:
        with open(self._wal_path, "rb") as f:
            while True:
                header = f.read(_WAL_HEADER.size)
                if len(header) < _WAL_HEADER.size:
                    break
                length, crc = _WAL_HEADER.unpack(header)
                payload = f.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    # Torn tail write: everything before it is intact.
                    break
                op = payload[0:1]
                klen = struct.unpack_from("<I", payload, 1)[0]
                key = payload[5 : 5 + klen]
                if op == b"P":
                    value = payload[5 + klen :]
                    self._memtable_put(key, value)
                elif op == b"D":
                    self._memtable_put(key, _TOMBSTONE)

    # -- memtable ---------------------------------------------------------

    def _memtable_put(self, key: bytes, value) -> None:
        old = self._memtable.get(key)
        if old is not None:
            self._mem_bytes -= len(key) + (0 if old is _TOMBSTONE else len(old))
        self._memtable[key] = value
        self._mem_bytes += len(key) + (0 if value is _TOMBSTONE else len(value))

    def _wal_append(self, op: bytes, key: bytes, value: bytes = b"") -> None:
        payload = op + struct.pack("<I", len(key)) + key + value
        self._wal.write(_WAL_HEADER.pack(len(payload), zlib.crc32(payload)))
        self._wal.write(payload)
        if self.sync_wal:
            self._wal.flush()
            os.fsync(self._wal.fileno())
        self.stats.wal_bytes += len(payload)

    def _maybe_flush(self) -> None:
        if self._mem_bytes >= self.memtable_bytes:
            self.flush_memtable()

    def flush_memtable(self) -> None:
        """Write the memtable out as a new SSTable and truncate the WAL."""
        self._check_open()
        if len(self._memtable) == 0:
            return
        name = f"sst-{self._next_table_id:06d}.tbl"
        self._next_table_id += 1
        entries = (
            (k, None if v is _TOMBSTONE else v) for k, v in self._memtable.scan()
        )
        written = SSTable.write(os.path.join(self.path, name), entries,
                                len(self._memtable))
        self.stats.flushes += 1
        self.stats.flushed_bytes += written
        self._sstables.append(SSTable(os.path.join(self.path, name)))
        self._memtable = SkipListMap()
        self._mem_bytes = 0
        self._write_manifest()
        # WAL content is now durable in the SSTable.
        self._wal.close()
        self._wal = open(self._wal_path, "wb")
        if len(self._sstables) > self.compaction_trigger:
            self.compact()

    def _write_manifest(self) -> None:
        manifest = {
            "next_table_id": self._next_table_id,
            "tables": [os.path.basename(t.path) for t in self._sstables],
        }
        tmp = self._manifest_path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(manifest, f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self._manifest_path)

    # -- compaction ---------------------------------------------------------

    def compact(self) -> None:
        """Merge every SSTable into one, dropping tombstones and shadowed keys."""
        self._check_open()
        if len(self._sstables) <= 1:
            return
        name = f"sst-{self._next_table_id:06d}.tbl"
        self._next_table_id += 1
        merged = list(self._merge_tables(include_tombstones=False))
        written = SSTable.write(os.path.join(self.path, name),
                                iter(merged), len(merged))
        self.stats.compactions += 1
        self.stats.compacted_bytes += written
        old = self._sstables
        self._sstables = [SSTable(os.path.join(self.path, name))]
        self._write_manifest()
        for table in old:
            os.unlink(table.path)

    def _merge_tables(self, include_tombstones: bool
                      ) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """K-way merge over SSTables only (not the memtable), newest wins."""
        # Heap items: (key, -age, seq, value). Lower age = older table.
        iters = [table.scan() for table in self._sstables]
        heap = []
        for age, it in enumerate(iters):
            first = next(it, None)
            if first is not None:
                heap.append((first[0], -age, first[1], it))
        heapq.heapify(heap)
        current_key = None
        while heap:
            key, neg_age, value, it = heapq.heappop(heap)
            nxt = next(it, None)
            if nxt is not None:
                heapq.heappush(heap, (nxt[0], neg_age, nxt[1], it))
            if key == current_key:
                continue  # an older table's value for the same key
            current_key = key
            if value is None and not include_tombstones:
                continue
            yield key, value

    # -- Backend API --------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        value = bytes(value)
        self._live_keys = None
        self._wal_append(b"P", key, value)
        self._memtable_put(key, value)
        self._maybe_flush()

    def get(self, key: bytes) -> bytes:
        self._check_open()
        self.stats.gets += 1
        value = self._memtable.get(key)
        if value is not None:
            self.stats.memtable_hits += 1
            if value is _TOMBSTONE:
                raise KeyNotFound(repr(key))
            return value
        for table in reversed(self._sstables):
            if key in table.bloom:
                self.stats.sstable_reads += 1
                found, tvalue = table.get(key)
                if found:
                    if tvalue is None:
                        raise KeyNotFound(repr(key))
                    return tvalue
            else:
                self.stats.bloom_skips += 1
        raise KeyNotFound(repr(key))

    def _exists_internal(self, key: bytes) -> bool:
        value = self._memtable.get(key)
        if value is not None:
            return value is not _TOMBSTONE
        for table in reversed(self._sstables):
            if key in table.bloom:
                found, tvalue = table.get(key)
                if found:
                    return tvalue is not None
        return False

    def exists(self, key: bytes) -> bool:
        self._check_open()
        return self._exists_internal(key)

    def erase(self, key: bytes) -> None:
        self._check_open()
        if not self._exists_internal(key):
            raise KeyNotFound(repr(key))
        self._live_keys = None
        self._wal_append(b"D", key)
        self._memtable_put(key, _TOMBSTONE)
        self._maybe_flush()

    def __len__(self) -> int:
        if self._live_keys is None:
            self._live_keys = sum(1 for _ in self.scan())
        return self._live_keys

    def scan(self, start: bytes = b"", inclusive: bool = True,
             end: Optional[bytes] = None) -> Iterator[Tuple[bytes, bytes]]:
        """Merged ordered iteration from ``start``.

        With ``end``, the merge stops at the first key ``>= end`` and
        every source iterator is bounded too: a prefix-bounded scan
        reads only the prefix's slice of each sorted run, not the tail
        of the store (tombstone and shadowed-key runs past the bound
        are never pulled through the heap).
        """
        self._check_open()
        # Merge memtable (age -1: newest) with all sstables.
        heap: list = []
        mem_iter = self._memtable.scan(start, inclusive=inclusive)
        first = next(mem_iter, None)
        if first is not None and (end is None or first[0] < end):
            heap.append((first[0], -len(self._sstables) - 1,
                         None if first[1] is _TOMBSTONE else first[1], mem_iter))
        for age, table in enumerate(self._sstables):
            it = table.scan(start, end=end)
            entry = next(it, None)
            while entry is not None and not inclusive and entry[0] == start:
                entry = next(it, None)
            if entry is not None:
                heap.append((entry[0], -age, entry[1], it))
        heapq.heapify(heap)
        current_key = None
        while heap:
            key, neg_age, value, it = heapq.heappop(heap)
            self.stats.scan_entries += 1
            nxt = next(it, None)
            if nxt is not None and (end is None or nxt[0] < end):
                if inclusive or nxt[0] != start:
                    raw = nxt[1]
                    if raw is _TOMBSTONE:
                        raw = None
                    heapq.heappush(heap, (nxt[0], neg_age, raw, it))
            if key == current_key:
                continue
            current_key = key
            if value is None or value is _TOMBSTONE:
                continue  # tombstone shadows older values
            yield key, value

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Prefix scan with an explicit upper bound on every sorted run."""
        end = prefix_upper_bound(prefix)
        for key, value in self.scan(prefix, end=end):
            if end is None and not key.startswith(prefix):
                return
            yield key, value

    def list_keys(self, prefix: bytes = b"", start_after: bytes = b"",
                  limit: int = 0) -> list[bytes]:
        end = prefix_upper_bound(prefix)
        out: list[bytes] = []
        if start_after and start_after >= prefix:
            iterator = self.scan(start_after, inclusive=False, end=end)
        else:
            iterator = self.scan(prefix, inclusive=True, end=end)
        for key, _ in iterator:
            if end is None and not key.startswith(prefix):
                break
            out.append(key)
            if limit and len(out) >= limit:
                break
        return out

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        self._check_open()
        self._wal.flush()
        os.fsync(self._wal.fileno())

    def close(self) -> None:
        if not self.closed:
            self._wal.flush()
            self._wal.close()
            super().close()
