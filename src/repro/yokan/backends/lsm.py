"""A log-structured merge-tree backend: the paper's RocksDB stand-in.

Production-shaped engine (PR 10), replacing the seed's inline design:

- writes append to a checksummed, *segmented* write-ahead log and land
  in a skip-list *memtable*; acknowledged writes always reach the OS
  (flush per record), so a simulated process crash loses nothing that
  was acked;
- when the active memtable exceeds ``memtable_bytes`` it is *rotated*
  onto an immutable-memtable list and a **background worker** (the
  Argobots-xstream stand-in) flushes it to an SSTable -- puts never
  stall on disk.  Reads consult active -> immutables -> SSTables;
- SSTables are **block-based** (``block_bytes`` entries per block, an
  optional per-block zlib/zstd codec) and read through an ``mmap``:
  a block fetch is a zero-copy slice of the map, decoded once and kept
  in a bytes-bounded **block LRU cache** shared across all tables of
  the backend;
- a tunable ``bits_per_key`` bloom filter per table skips tables that
  cannot hold a key;
- deletes write *tombstones*, dropped when a compaction includes the
  oldest table;
- compaction is **size-tiered**: contiguous age-runs of similarly
  sized tables merge into one (never the seed's merge-everything), on
  the same background worker, with a backlog gauge and a write
  throttle when the backlog grows.  ``compaction="full"`` restores the
  seed's merge-everything policy, and ``background=False`` restores
  inline flushes -- together they are the benchmark's seed baseline.

Crash-safety contract (composes with ``BedrockServer.crash(
lose_state=True)`` and, when configured, an outer ``DurableBackend``):
a WAL segment is deleted only *after* the SSTable holding its data is
durable (fsynced, renamed, and referenced by the fsynced MANIFEST).
A crash mid-flush or mid-compaction leaves either orphan files (not in
the manifest: removed on recovery) or undeleted segments (replayed
idempotently) -- never a hole.

The backend tracks write/read-amplification counters so benchmarks can
show *why* the in-memory backend wins at scale in Figure 2.
"""

from __future__ import annotations

import bisect
import hashlib
import heapq
import json
import mmap
import os
import struct
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import ConfigError, CorruptionError, KeyNotFound
from repro.monitor import tracing as _tracing
from repro.utils import SkipListMap
from repro.yokan.backend import Backend, prefix_upper_bound, register_backend

_WAL_HEADER = struct.Struct("<II")  # payload length, crc32
_U32 = struct.Struct("<I")
_ENTRY = struct.Struct("<II")  # key length, value length
_SST_MAGIC = b"SSTB0002"
_FOOTER_LEN = struct.Struct("<Q")
_TOMBSTONE_LEN = 0xFFFFFFFF

#: Sentinel stored in the memtable for deleted keys.
_TOMBSTONE = object()

#: Tables smaller than this all land in size tier 0.
_TIER_BASE_BYTES = 64 * 1024

try:  # gated optional dependency -- never required
    import zstandard as _zstd
except ImportError:  # pragma: no cover - environment-dependent
    _zstd = None


def _codec_funcs(name: Optional[str]):
    """(compress, decompress) for a block codec name (None = raw)."""
    if name is None or name == "none":
        return None, None
    if name == "zlib":
        return (lambda b: zlib.compress(b, 1)), zlib.decompress
    if name == "zstd":
        if _zstd is None:
            raise ConfigError(
                "lsm compression 'zstd' requested but the zstandard "
                "module is not installed; use 'zlib' or None")
        cctx = _zstd.ZstdCompressor(level=1)
        dctx = _zstd.ZstdDecompressor()
        return cctx.compress, dctx.decompress
    raise ConfigError(f"unknown lsm compression {name!r}; "
                      "known: None, 'zlib', 'zstd'")


class _FlushAborted(Exception):
    """A background file build observed a crash and abandoned its work."""


class BloomFilter:
    """A fixed-size bloom filter over byte keys.

    Hashing is one ``blake2b`` digest split into two 64-bit halves
    (double hashing ``h1 + i*h2``), so probing *many* tables for one
    key pays the digest once via :meth:`hash_pair` +
    :meth:`contains_hashed`.
    """

    def __init__(self, num_bits: int, num_hashes: int = 4,
                 bits: Optional[bytearray] = None):
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bits if bits is not None else bytearray((num_bits + 7) // 8)

    @classmethod
    def for_capacity(cls, n: int, bits_per_key: int = 10) -> "BloomFilter":
        return cls(max(64, n * bits_per_key))

    @staticmethod
    def hash_pair(key: bytes) -> Tuple[int, int]:
        digest = hashlib.blake2b(key, digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1
        return h1, h2

    def _positions(self, key: bytes) -> Iterator[int]:
        h1, h2 = self.hash_pair(key)
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)

    def __contains__(self, key: bytes) -> bool:
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(key)
        )

    def contains_hashed(self, h1: int, h2: int) -> bool:
        bits = self._bits
        num_bits = self.num_bits
        for i in range(self.num_hashes):
            pos = (h1 + i * h2) % num_bits
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def to_bytes(self) -> bytes:
        return struct.pack("<QI", self.num_bits, self.num_hashes) + bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        num_bits, num_hashes = struct.unpack_from("<QI", data)
        return cls(num_bits, num_hashes, bytearray(data[12:]))


@dataclass
class LSMStats:
    """Amplification, pipeline, and cache counters."""

    #: bytes framed into the WAL (the logical write stream)
    wal_bytes: int = 0
    #: user payload bytes acknowledged (keys + values)
    logical_bytes: int = 0
    flushes: int = 0
    flushed_bytes: int = 0
    compactions: int = 0
    compacted_bytes: int = 0
    #: memtable rotations (active -> immutable list)
    rotations: int = 0
    flush_seconds: float = 0.0
    compaction_seconds: float = 0.0
    #: lookups served (``get`` + ``exists`` -- the unified read path)
    gets: int = 0
    memtable_hits: int = 0
    immutable_hits: int = 0
    #: SSTable probes that passed the bloom filter (point lookups)
    sstable_reads: int = 0
    bloom_skips: int = 0
    #: data blocks decoded from disk (block-cache misses)
    blocks_read: int = 0
    block_cache_hits: int = 0
    block_cache_misses: int = 0
    block_cache_evictions: int = 0
    #: soft write throttles (backlog over ``throttle_backlog``)
    throttle_waits: int = 0
    #: hard write stalls (immutable list at ``max_immutables``)
    backpressure_waits: int = 0
    #: background tasks that failed (surfaced via ``drain``)
    worker_errors: int = 0
    #: entries pulled through the scan merge heap (bounded prefix scans
    #: should keep this proportional to the prefix range, not the store)
    scan_entries: int = 0

    @property
    def write_amplification(self) -> float:
        logical = self.wal_bytes or 1
        return (self.wal_bytes + self.flushed_bytes + self.compacted_bytes) / logical

    @property
    def read_amplification(self) -> float:
        """Disk blocks decoded per lookup (cache hits cost nothing)."""
        return self.blocks_read / (self.gets or 1)

    @property
    def block_cache_hit_rate(self) -> float:
        total = self.block_cache_hits + self.block_cache_misses
        return self.block_cache_hits / total if total else 0.0


class BlockCache:
    """Bytes-bounded LRU over decoded SSTable blocks.

    Shared by every table of one backend; keys are ``(table_uid,
    block_index)`` so recycled file names can never alias.  A
    ``max_bytes`` of 0 disables caching (every read decodes its
    block).
    """

    def __init__(self, max_bytes: int, stats: LSMStats):
        self.max_bytes = max(0, int(max_bytes))
        self.stats = stats
        self._entries: OrderedDict = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    def get(self, key):
        if self.max_bytes == 0:
            self.stats.block_cache_misses += 1
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.block_cache_misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.block_cache_hits += 1
            return entry[0]

    def put(self, key, block, nbytes: int) -> None:
        if self.max_bytes == 0 or nbytes > self.max_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (block, nbytes)
            self._bytes += nbytes
            while self._bytes > self.max_bytes:
                _k, (_b, dropped) = self._entries.popitem(last=False)
                self._bytes -= dropped
                self.stats.block_cache_evictions += 1

    def drop_table(self, uid: int) -> None:
        """Evict every block of a compacted-away table."""
        with self._lock:
            stale = [k for k in self._entries if k[0] == uid]
            for k in stale:
                _b, nbytes = self._entries.pop(k)
                self._bytes -= nbytes

    @property
    def used_bytes(self) -> int:
        return self._bytes


def _parse_block(buf) -> Tuple[list, list]:
    """Decode one block's entries into parallel (keys, values) lists.

    ``values`` holds ``None`` for tombstones.  Entries are copied out
    of the (possibly mmap-backed) buffer so cached blocks never pin a
    dead table's mapping.
    """
    keys: list = []
    values: list = []
    offset = 0
    end = len(buf)
    while offset < end:
        klen, vlen = _ENTRY.unpack_from(buf, offset)
        offset += 8
        keys.append(bytes(buf[offset:offset + klen]))
        offset += klen
        if vlen == _TOMBSTONE_LEN:
            values.append(None)
        else:
            values.append(bytes(buf[offset:offset + vlen]))
            offset += vlen
    return keys, values


class SSTable:
    """One immutable, block-based sorted table on disk.

    The file is mapped read-only once; block reads are zero-copy
    slices of the map, decoded on first touch and served from the
    shared :class:`BlockCache` afterwards.
    """

    _next_uid = 0
    _uid_lock = threading.Lock()

    def __init__(self, path: str, cache: Optional[BlockCache] = None,
                 stats: Optional[LSMStats] = None):
        self.path = path
        self.cache = cache
        self.stats = stats
        with SSTable._uid_lock:
            self.uid = SSTable._next_uid
            SSTable._next_uid += 1
        with open(path, "rb") as f:
            if f.read(len(_SST_MAGIC)) != _SST_MAGIC:
                raise CorruptionError(f"{path}: bad SSTable magic")
            self._mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
        view = memoryview(self._mm)
        (footer_size,) = _FOOTER_LEN.unpack(view[-_FOOTER_LEN.size:])
        footer_start = len(view) - _FOOTER_LEN.size - footer_size
        footer = json.loads(bytes(view[footer_start:footer_start + footer_size]))
        self._view = view
        self.num_entries: int = footer["n"]
        self.data_end: int = footer["data_end"]
        self.codec: Optional[str] = footer.get("codec")
        _compress, self._decompress = _codec_funcs(self.codec)
        #: per block: (offset, stored length, compressed flag)
        self.blocks: list[tuple[int, int, int]] = [
            (off, stored, flag) for _first, off, stored, flag
            in footer["blocks"]
        ]
        self.block_firsts: list[bytes] = [
            bytes.fromhex(b[0]) for b in footer["blocks"]
        ]
        self.bloom = BloomFilter.from_bytes(bytes.fromhex(footer["bloom"]))
        self.min_key = bytes.fromhex(footer["min"]) if footer["min"] else b""
        self.max_key = bytes.fromhex(footer["max"]) if footer["max"] else b""

    @property
    def size_bytes(self) -> int:
        """Data bytes (pre-footer) -- the size-tiering measure."""
        return self.data_end - len(_SST_MAGIC)

    def close(self) -> None:
        view, self._view = self._view, memoryview(b"")
        view.release()
        self._mm.close()

    @staticmethod
    def write(path: str, entries: Iterable[Tuple[bytes, Optional[bytes]]],
              expected_count: int, *, block_bytes: int = 4096,
              bits_per_key: int = 10, codec: Optional[str] = None,
              should_abort: Optional[Callable[[], bool]] = None,
              on_block: Optional[Callable[[int], None]] = None) -> int:
        """Write sorted ``entries`` (value ``None`` = tombstone) to ``path``.

        Entries are grouped into blocks of ~``block_bytes``; each block
        is compressed with ``codec`` when that actually shrinks it.
        ``should_abort`` is polled at every block boundary so a
        simulated crash can abandon a half-written table (the ``.tmp``
        never becomes visible).  ``on_block`` is a test hook invoked
        with the block ordinal after each block lands.

        Returns the number of data bytes written.
        """
        compress, _decompress = _codec_funcs(codec)
        bloom = BloomFilter.for_capacity(max(expected_count, 1), bits_per_key)
        blocks: list[tuple[str, int, int, int]] = []
        n = 0
        min_key = max_key = None
        tmp = path + ".tmp"
        buf = bytearray()
        first_key: Optional[bytes] = None
        try:
            with open(tmp, "wb") as f:
                f.write(_SST_MAGIC)

                def emit_block() -> None:
                    nonlocal buf, first_key
                    if not buf:
                        return
                    if should_abort is not None and should_abort():
                        raise _FlushAborted(path)
                    raw = bytes(buf)
                    stored, flag = raw, 0
                    if compress is not None:
                        packed = compress(raw)
                        if len(packed) < len(raw):
                            stored, flag = packed, 1
                    offset = f.tell()
                    f.write(stored)
                    blocks.append((first_key.hex(), offset, len(stored), flag))
                    if on_block is not None:
                        on_block(len(blocks) - 1)
                    buf = bytearray()
                    first_key = None

                for key, value in entries:
                    if first_key is None:
                        first_key = key
                    bloom.add(key)
                    if min_key is None:
                        min_key = key
                    max_key = key
                    if value is None:
                        buf += _ENTRY.pack(len(key), _TOMBSTONE_LEN)
                        buf += key
                    else:
                        buf += _ENTRY.pack(len(key), len(value))
                        buf += key
                        buf += value
                    n += 1
                    if len(buf) >= block_bytes:
                        emit_block()
                emit_block()
                data_end = f.tell()
                footer = json.dumps({
                    "n": n,
                    "data_end": data_end,
                    "codec": codec,
                    "blocks": blocks,
                    "bloom": bloom.to_bytes().hex(),
                    "min": min_key.hex() if min_key is not None else "",
                    "max": max_key.hex() if max_key is not None else "",
                }).encode()
                f.write(footer)
                f.write(_FOOTER_LEN.pack(len(footer)))
                f.flush()
                os.fsync(f.fileno())
        except _FlushAborted:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        os.replace(tmp, path)
        return data_end - len(_SST_MAGIC)

    # -- block access --------------------------------------------------------

    def _block_entries(self, index: int) -> Tuple[list, list]:
        cache_key = (self.uid, index)
        if self.cache is not None:
            block = self.cache.get(cache_key)
            if block is not None:
                return block
        offset, stored, flag = self.blocks[index]
        raw = self._view[offset:offset + stored]
        if flag:
            raw = self._decompress(bytes(raw))
        block = _parse_block(raw)
        if self.stats is not None:
            self.stats.blocks_read += 1
        if self.cache is not None:
            keys, values = block
            nbytes = 64 + sum(len(k) for k in keys) + sum(
                len(v) for v in values if v is not None) + 16 * len(keys)
            self.cache.put(cache_key, block, nbytes)
        return block

    def get(self, key: bytes,
            hashes: Optional[Tuple[int, int]] = None
            ) -> Tuple[bool, Optional[bytes]]:
        """(found, value) -- value ``None`` with found=True is a tombstone."""
        if self.num_entries == 0 or not self.min_key <= key <= self.max_key:
            return False, None
        if hashes is not None:
            if not self.bloom.contains_hashed(*hashes):
                return False, None
        elif key not in self.bloom:
            return False, None
        index = bisect.bisect_right(self.block_firsts, key) - 1
        if index < 0:
            return False, None
        keys, values = self._block_entries(index)
        i = bisect.bisect_left(keys, key)
        if i < len(keys) and keys[i] == key:
            return True, values[i]
        return False, None

    def scan(self, start: bytes = b"", end: Optional[bytes] = None
             ) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """Ordered iteration including tombstones, from ``start``.

        With ``end``, iteration (and the underlying block decodes) stop
        at the first key ``>= end`` -- prefix-bounded scans never pay
        for the rest of the sorted run.
        """
        if self.num_entries == 0 or self.max_key < start:
            return
        if end is not None and self.min_key >= end:
            return
        index = max(0, bisect.bisect_right(self.block_firsts, start) - 1)
        for b in range(index, len(self.blocks)):
            if end is not None and self.block_firsts[b] >= end:
                return
            keys, values = self._block_entries(b)
            i = bisect.bisect_left(keys, start) if b == index else 0
            for j in range(i, len(keys)):
                key = keys[j]
                if end is not None and key >= end:
                    return
                yield key, values[j]


class _Immutable:
    """A sealed memtable queued for flush, plus its WAL segments."""

    __slots__ = ("memtable", "nbytes", "segments")

    def __init__(self, memtable: SkipListMap, nbytes: int,
                 segments: list[str]):
        self.memtable = memtable
        self.nbytes = nbytes
        self.segments = segments


@register_backend("lsm")
class LSMBackend(Backend):
    """The persistent LSM backend (``"lsm"``, standing in for RocksDB).

    All knobs flow from the bedrock database config
    (``{"type": "lsm", "config": {...}}``):

    - ``memtable_bytes`` -- rotation threshold for the active memtable;
    - ``background`` -- flush/compact on the dedicated worker thread
      (default); ``False`` restores the seed's inline behaviour;
    - ``compaction`` -- ``"tiered"`` (size-tiered runs, default) or
      ``"full"`` (the seed's merge-everything policy);
    - ``compaction_trigger`` -- tables per size tier (or total tables,
      for ``"full"``) before a merge is scheduled;
    - ``tier_ratio`` -- size ratio separating tiers;
    - ``max_immutables`` -- hard bound on unflushed sealed memtables
      (writers stall at the bound -- backpressure);
    - ``throttle_backlog`` / ``throttle_sleep_s`` -- soft write
      throttle once the flush+compaction backlog passes the threshold;
    - ``block_bytes`` / ``block_cache_bytes`` -- SSTable block size and
      the shared decoded-block LRU budget (0 disables the cache);
    - ``bits_per_key`` -- bloom filter budget per table;
    - ``compression`` -- per-block codec: ``None``, ``"zlib"`` or
      ``"zstd"`` (gated on the module being available);
    - ``sync_wal`` -- fsync the WAL on every append (records always
      reach the OS regardless, so acked writes survive process death).
    """

    def __init__(self, path: str, memtable_bytes: int = 4 * 1024 * 1024,
                 compaction_trigger: int = 4, sync_wal: bool = False,
                 background: bool = True, compaction: str = "tiered",
                 tier_ratio: int = 4, max_immutables: int = 4,
                 throttle_backlog: int = 8, throttle_sleep_s: float = 0.002,
                 block_bytes: int = 4096,
                 block_cache_bytes: int = 8 * 1024 * 1024,
                 bits_per_key: int = 10, compression: Optional[str] = None,
                 **_unused):
        super().__init__()
        if compaction not in ("tiered", "full"):
            raise ConfigError(
                f"unknown lsm compaction policy {compaction!r}; "
                "known: 'tiered', 'full'")
        _codec_funcs(compression)  # validate (and gate zstd) eagerly
        self.path = path
        self.memtable_bytes = memtable_bytes
        self.compaction_trigger = max(2, int(compaction_trigger))
        self.sync_wal = sync_wal
        self.background = bool(background)
        self.compaction_policy = compaction
        self.tier_ratio = max(2, int(tier_ratio))
        self.max_immutables = max(1, int(max_immutables))
        self.throttle_backlog = max(1, int(throttle_backlog))
        self.throttle_sleep_s = float(throttle_sleep_s)
        self.block_bytes = max(256, int(block_bytes))
        self.bits_per_key = max(1, int(bits_per_key))
        self.compression = compression
        self.stats = LSMStats()
        self.block_cache = BlockCache(block_cache_bytes, self.stats)
        os.makedirs(path, exist_ok=True)
        self._manifest_path = os.path.join(path, "MANIFEST.json")
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._memtable = SkipListMap()
        self._mem_bytes = 0
        self._immutables: list[_Immutable] = []  # oldest first
        self._sstables: list[SSTable] = []  # oldest first
        self._next_table_id = 0
        self._wal_seq = 0
        self._live_keys: Optional[int] = None
        self._closing = False
        self._worker_busy = False
        self._worker_error: Optional[BaseException] = None
        #: test hooks: name -> callable, invoked at named worker points
        #: ('flush_block', 'flush_installed', 'compact_block',
        #: 'compact_installed'); see tests/test_durability.py.
        self._test_hooks: dict[str, Callable] = {}
        self._recover()
        self._open_new_segment(fresh_ownership=False)
        self._worker: Optional[threading.Thread] = None
        if self.background:
            self._worker = threading.Thread(
                target=self._worker_loop, daemon=True,
                name=f"lsm-worker:{os.path.basename(path)}")
            self._worker.start()
        with self._lock:
            if self._mem_bytes >= self.memtable_bytes:
                self._seal_memtable_locked()
        if not self.background:
            self._drain_inline()

    # -- WAL segments -------------------------------------------------------

    def _segment_name(self, seq: int) -> str:
        return f"wal-{seq:06d}.log"

    @property
    def active_wal_path(self) -> str:
        """Path of the WAL segment currently taking appends."""
        return self._wal_path

    def _open_new_segment(self, fresh_ownership: bool = True) -> None:
        """Open the next WAL segment as the active one.

        With ``fresh_ownership`` the new segment starts a new ownership
        list (post-rotation); at recovery the replayed segments stay
        owned by the rebuilt memtable, so they are deleted only once
        that memtable's SSTable is durable.
        """
        name = self._segment_name(self._wal_seq)
        self._wal_seq += 1
        self._wal_path = os.path.join(self.path, name)
        self._wal = open(self._wal_path, "ab")
        if fresh_ownership:
            self._active_segments = [name]
        else:
            self._active_segments.append(name)

    def _wal_append(self, payload: bytes, flush: bool = True) -> None:
        self._wal.write(_WAL_HEADER.pack(len(payload), zlib.crc32(payload)))
        self._wal.write(payload)
        if flush:
            # Reach the OS on every record: a simulated process crash
            # (file object abandoned, never closed) still finds every
            # acknowledged write on disk.
            self._wal.flush()
            if self.sync_wal:
                os.fsync(self._wal.fileno())
        self.stats.wal_bytes += len(payload)

    # -- recovery ---------------------------------------------------------

    def _recover(self) -> None:
        tables: list[str] = []
        if os.path.exists(self._manifest_path):
            with open(self._manifest_path) as f:
                manifest = json.load(f)
            self._next_table_id = manifest["next_table_id"]
            tables = list(manifest["tables"])
        known = set(tables)
        for name in sorted(os.listdir(self.path)):
            # Orphans: tables a crash never published in the manifest,
            # and abandoned half-written temporaries.
            if name.endswith(".tmp") or (
                    name.startswith("sst-") and name.endswith(".tbl")
                    and name not in known):
                try:
                    os.unlink(os.path.join(self.path, name))
                except OSError:
                    pass
        for name in tables:
            self._sstables.append(SSTable(os.path.join(self.path, name),
                                          cache=self.block_cache,
                                          stats=self.stats))
        segments = sorted(
            name for name in os.listdir(self.path)
            if name.startswith("wal-") and name.endswith(".log"))
        self._active_segments: list[str] = []
        replayed_any = False
        for name in segments:
            if self._replay_segment(os.path.join(self.path, name)):
                replayed_any = True
                self._active_segments.append(name)
            else:
                # Empty segment: nothing owned, drop it now.
                try:
                    os.unlink(os.path.join(self.path, name))
                except OSError:
                    pass
        if segments:
            last = segments[-1]
            self._wal_seq = int(last[4:-4]) + 1
        if replayed_any:
            self._live_keys = None

    def _replay_segment(self, path: str) -> bool:
        """Replay one WAL segment into the memtable; True if non-empty."""
        replayed = False
        with open(path, "rb") as f:
            while True:
                header = f.read(_WAL_HEADER.size)
                if len(header) < _WAL_HEADER.size:
                    break
                length, crc = _WAL_HEADER.unpack(header)
                payload = f.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    # Torn tail write: everything before it is intact.
                    break
                self._apply_record(payload)
                replayed = True
        return replayed

    def _apply_record(self, payload: bytes) -> None:
        op = payload[0:1]
        if op == b"P":
            (klen,) = _U32.unpack_from(payload, 1)
            key = payload[5:5 + klen]
            self._memtable_put(key, payload[5 + klen:])
        elif op == b"D":
            (klen,) = _U32.unpack_from(payload, 1)
            self._memtable_put(payload[5:5 + klen], _TOMBSTONE)
        elif op == b"M":
            (count,) = _U32.unpack_from(payload, 1)
            offset = 5
            for _ in range(count):
                klen, vlen = _ENTRY.unpack_from(payload, offset)
                offset += 8
                key = payload[offset:offset + klen]
                offset += klen
                self._memtable_put(key, payload[offset:offset + vlen])
                offset += vlen
        else:
            raise CorruptionError(f"unknown LSM WAL opcode {op!r}")

    # -- memtable ---------------------------------------------------------

    def _memtable_put(self, key: bytes, value) -> None:
        old = self._memtable.get(key)
        if old is not None:
            self._mem_bytes -= len(key) + (0 if old is _TOMBSTONE else len(old))
        self._memtable[key] = value
        self._mem_bytes += len(key) + (0 if value is _TOMBSTONE else len(value))

    def _seal_memtable_locked(self) -> None:
        """Rotate the active memtable onto the immutable list."""
        if len(self._memtable) == 0:
            return
        self._wal.flush()
        self._wal.close()
        self._immutables.append(_Immutable(
            self._memtable, self._mem_bytes, self._active_segments))
        self._memtable = SkipListMap()
        self._mem_bytes = 0
        self.stats.rotations += 1
        self._open_new_segment()
        self._work.notify_all()

    # -- background worker ---------------------------------------------------

    def _has_work_locked(self) -> bool:
        return bool(self._immutables) or self._candidate_locked() is not None

    def _worker_loop(self) -> None:
        while True:
            with self._work:
                while not (self._closing or self._crashed
                           or self._has_work_locked()):
                    self._work.wait(0.1)
                if self._crashed or (self._closing
                                     and not self._has_work_locked()):
                    return
                if self._immutables:
                    task, payload = "flush", self._immutables[0]
                else:
                    run = self._candidate_locked()
                    if run is None:
                        continue
                    task, payload = "compact", run
                self._worker_busy = True
            try:
                if task == "flush":
                    self._flush_immutable(payload)
                else:
                    start, end = payload
                    self._compact_run(start, end)
            except _FlushAborted:
                return  # crash observed mid-build; files cleaned up
            except Exception as exc:  # noqa: BLE001 - surfaced via drain()
                with self._lock:
                    self.stats.worker_errors += 1
                    self._worker_error = exc
            finally:
                with self._work:
                    self._worker_busy = False
                    self._work.notify_all()
            if self._closing and not self.background:
                return

    def _should_abort(self) -> bool:
        return self._crashed

    def _flush_immutable(self, imm: _Immutable) -> None:
        """Write one sealed memtable out as an SSTable, then retire it.

        Ordering is the crash-safety contract: the table is fsynced and
        renamed, the manifest referencing it is fsynced and renamed,
        and only then are the memtable's WAL segments deleted.
        """
        t0 = time.perf_counter()
        name = f"sst-{self._next_table_id:06d}.tbl"
        self._next_table_id += 1
        entries = (
            (k, None if v is _TOMBSTONE else v)
            for k, v in imm.memtable.scan()
        )
        span = (_tracing.span("lsm.flush", parent=_tracing.NO_PARENT,
                              path=os.path.basename(self.path),
                              entries=len(imm.memtable))
                if _tracing.enabled else None)
        try:
            written = SSTable.write(
                os.path.join(self.path, name), entries, len(imm.memtable),
                block_bytes=self.block_bytes, bits_per_key=self.bits_per_key,
                codec=self.compression, should_abort=self._should_abort,
                on_block=self._test_hooks.get("flush_block"))
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        with self._lock:
            if self._crashed:
                raise _FlushAborted(name)
            self._sstables.append(SSTable(os.path.join(self.path, name),
                                          cache=self.block_cache,
                                          stats=self.stats))
            try:
                self._immutables.remove(imm)
            except ValueError:
                pass
            self.stats.flushes += 1
            self.stats.flushed_bytes += written
            self.stats.flush_seconds += time.perf_counter() - t0
            self._write_manifest()
            self._work.notify_all()
        hook = self._test_hooks.get("flush_installed")
        if hook is not None:
            hook()
        # The segments' content is now durable in the SSTable.
        for segment in imm.segments:
            try:
                os.unlink(os.path.join(self.path, segment))
            except OSError:
                pass

    def _write_manifest(self) -> None:
        manifest = {
            "next_table_id": self._next_table_id,
            "tables": [os.path.basename(t.path) for t in self._sstables],
        }
        tmp = self._manifest_path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(manifest, f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self._manifest_path)

    # -- compaction ---------------------------------------------------------

    def _size_bucket(self, size: int) -> int:
        bucket = 0
        size = max(size, 1)
        while size > _TIER_BASE_BYTES:
            size //= self.tier_ratio
            bucket += 1
        return bucket

    def _candidate_locked(self) -> Optional[Tuple[int, int]]:
        """The next compaction run as ``(start, end)`` indices, or None.

        Size-tiered selection over contiguous *age* runs: merging only
        adjacent-in-age tables preserves newest-wins semantics without
        tracking per-key sequence numbers.  Prefers the oldest eligible
        run (which can drop tombstones).  When the table count grows
        far past the trigger without any same-tier run forming, the
        oldest ``compaction_trigger`` tables merge regardless, so the
        count stays bounded for any size distribution.
        """
        if self.compaction_policy == "full":
            if len(self._sstables) > self.compaction_trigger:
                return (0, len(self._sstables))
            return None
        tables = self._sstables
        if len(tables) < self.compaction_trigger:
            return None
        buckets = [self._size_bucket(t.size_bytes) for t in tables]
        start = 0
        while start < len(tables):
            end = start + 1
            while end < len(tables) and buckets[end] == buckets[start]:
                end += 1
            if end - start >= self.compaction_trigger:
                return (start, end)
            start = end
        if len(tables) >= self.compaction_trigger * 6:
            return (0, self.compaction_trigger)
        return None

    def _compact_run(self, start: int, end: int) -> None:
        """Merge ``_sstables[start:end]`` into one table.

        Tombstones are dropped only when the run includes the oldest
        table -- otherwise an older table may still hold the deleted
        key, and dropping the tombstone would resurrect it.
        """
        with self._lock:
            if self._crashed:
                return
            run = self._sstables[start:end]
            if len(run) <= 1:
                return
            name = f"sst-{self._next_table_id:06d}.tbl"
            self._next_table_id += 1
        drop_tombstones = start == 0
        t0 = time.perf_counter()
        span = (_tracing.span("lsm.compaction", parent=_tracing.NO_PARENT,
                              path=os.path.basename(self.path),
                              tables=len(run))
                if _tracing.enabled else None)
        merged = self._merge_tables(run, include_tombstones=not drop_tombstones)
        expected = sum(t.num_entries for t in run)
        try:
            written = SSTable.write(
                os.path.join(self.path, name), merged, expected,
                block_bytes=self.block_bytes, bits_per_key=self.bits_per_key,
                codec=self.compression, should_abort=self._should_abort,
                on_block=self._test_hooks.get("compact_block"))
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        new_table = SSTable(os.path.join(self.path, name),
                            cache=self.block_cache, stats=self.stats)
        with self._lock:
            if self._crashed:
                raise _FlushAborted(name)
            # The run is still contiguous at the same position: only
            # this worker (or the exclusive manual compact) reorders
            # the list, and flushes strictly append.
            assert self._sstables[start:end] == run
            if new_table.num_entries == 0:
                # Everything merged away (all tombstones): drop the run.
                self._sstables[start:end] = []
            else:
                self._sstables[start:end] = [new_table]
            self.stats.compactions += 1
            self.stats.compacted_bytes += written
            self.stats.compaction_seconds += time.perf_counter() - t0
            self._write_manifest()
            self._work.notify_all()
        hook = self._test_hooks.get("compact_installed")
        if hook is not None:
            hook()
        if new_table.num_entries == 0:
            os.unlink(new_table.path)
        for table in run:
            self.block_cache.drop_table(table.uid)
            try:
                os.unlink(table.path)
            except OSError:
                pass

    def _merge_tables(self, tables: Sequence[SSTable],
                      include_tombstones: bool
                      ) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """K-way merge over ``tables`` (oldest first), newest wins."""
        heap = []
        for age, table in enumerate(tables):
            it = table.scan()
            first = next(it, None)
            if first is not None:
                heap.append((first[0], -age, first[1], it))
        heapq.heapify(heap)
        current_key = None
        while heap:
            key, neg_age, value, it = heapq.heappop(heap)
            nxt = next(it, None)
            if nxt is not None:
                heapq.heappush(heap, (nxt[0], neg_age, nxt[1], it))
            if key == current_key:
                continue  # an older table's value for the same key
            current_key = key
            if value is None and not include_tombstones:
                continue
            yield key, value

    # -- backlog & synchronous maintenance ------------------------------------

    def compaction_backlog(self) -> int:
        """Unflushed memtables + tables beyond the next quiescent state."""
        with self._lock:
            backlog = len(self._immutables)
            run = self._candidate_locked()
            if run is not None:
                backlog += run[1] - run[0]
            return backlog

    def _apply_write_pressure(self) -> None:
        # Unlocked emptiness probe: while the worker keeps up (no
        # sealed memtable waiting) writes pay nothing here.  The gauge
        # scan and any stall run only once a flush is actually queued.
        if not self._immutables:
            return
        with self._work:
            while (len(self._immutables) >= self.max_immutables
                   and not self._closed and self.background):
                self.stats.backpressure_waits += 1
                self._work.wait(0.05)
        backlog = self.compaction_backlog()
        if backlog > self.throttle_backlog:
            self.stats.throttle_waits += 1
            time.sleep(self.throttle_sleep_s *
                       min(4, backlog - self.throttle_backlog))

    def _drain_inline(self) -> None:
        """Inline mode: run every pending flush/compaction to quiescence."""
        while True:
            with self._lock:
                if self._immutables:
                    task, payload = "flush", self._immutables[0]
                else:
                    run = self._candidate_locked()
                    if run is None:
                        return
                    task, payload = "compact", run
            if task == "flush":
                self._flush_immutable(payload)
            else:
                self._compact_run(*payload)

    def drain(self, timeout: float = 60.0) -> None:
        """Block until the engine is quiescent (tests & benchmarks).

        Raises the first background-worker error, if any occurred.
        """
        self._check_open()
        if not self.background:
            self._drain_inline()
        else:
            deadline = time.monotonic() + timeout
            with self._work:
                while (self._has_work_locked() or self._worker_busy):
                    if self._worker_error is not None:
                        break
                    if time.monotonic() >= deadline:
                        raise TimeoutError("lsm drain timed out")
                    self._work.wait(0.05)
        with self._lock:
            error, self._worker_error = self._worker_error, None
        if error is not None:
            raise error

    def flush_memtable(self) -> None:
        """Rotate the active memtable and wait until it is on disk."""
        self._check_open()
        with self._lock:
            self._seal_memtable_locked()
        if self.background:
            deadline = time.monotonic() + 60.0
            with self._work:
                while self._immutables or self._worker_busy:
                    if self._worker_error is not None:
                        break
                    if time.monotonic() >= deadline:
                        raise TimeoutError("lsm flush_memtable timed out")
                    self._work.wait(0.05)
            with self._lock:
                error, self._worker_error = self._worker_error, None
            if error is not None:
                raise error
        else:
            self._drain_inline()

    def compact(self) -> None:
        """Merge every SSTable into one, dropping tombstones and
        shadowed keys (explicit full maintenance; the background policy
        normally merges tier-sized runs instead)."""
        self._check_open()
        # Wait out any in-flight background task so the full merge sees
        # a stable table list (flushes appending mid-merge are fine --
        # the run splice is position-checked).
        if self.background:
            with self._work:
                while self._worker_busy:
                    self._work.wait(0.05)
        with self._lock:
            count = len(self._sstables)
        if count <= 1:
            return
        self._compact_run(0, count)

    # -- unified lookup path -------------------------------------------------

    def _lookup(self, key: bytes, record: bool = True
                ) -> Tuple[bool, Optional[bytes]]:
        """(present, value) through active -> immutables -> SSTables.

        ``present`` is False for both missing keys and tombstones.
        ``record=False`` skips the read-amplification counters -- used
        by internal pre-image probes (live-key accounting, erase
        checks) so the benchmark's read-path stats only count client
        lookups.
        """
        stats = self.stats
        if record:
            stats.gets += 1
        with self._lock:
            value = self._memtable.get(key)
            if value is not None:
                if record:
                    stats.memtable_hits += 1
                return value is not _TOMBSTONE, \
                    None if value is _TOMBSTONE else value
            for imm in reversed(self._immutables):
                value = imm.memtable.get(key)
                if value is not None:
                    if record:
                        stats.immutable_hits += 1
                    return value is not _TOMBSTONE, \
                        None if value is _TOMBSTONE else value
            tables = tuple(self._sstables)
        hashes = None
        for table in reversed(tables):
            if hashes is None:
                hashes = BloomFilter.hash_pair(key)
            if not table.bloom.contains_hashed(*hashes):
                if record:
                    stats.bloom_skips += 1
                continue
            if record:
                stats.sstable_reads += 1
            found, tvalue = table.get(key, hashes)
            if found:
                return tvalue is not None, tvalue
        return False, None

    # -- Backend API --------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        key = bytes(key)
        value = bytes(value)
        if self.background:
            self._apply_write_pressure()
        with self._lock:
            self._check_open()
            self._wal_append(b"P" + _U32.pack(len(key)) + key + value)
            self._account_put_locked(key)
            self._memtable_put(key, value)
            self.stats.logical_bytes += len(key) + len(value)
            if self._mem_bytes >= self.memtable_bytes:
                self._seal_memtable_locked()
        if not self.background:
            self._drain_inline()

    def put_multi(self, pairs: Iterable[Tuple[bytes, bytes]]) -> int:
        """Batched insert: one WAL record, one lock acquisition."""
        self._check_open()
        pairs = [(bytes(k), bytes(v)) for k, v in pairs]
        if not pairs:
            return 0
        if self.background:
            self._apply_write_pressure()
        parts = [b"M", _U32.pack(len(pairs))]
        for key, value in pairs:
            parts.append(_ENTRY.pack(len(key), len(value)))
            parts.append(key)
            parts.append(value)
        with self._lock:
            self._check_open()
            self._wal_append(b"".join(parts))
            for key, value in pairs:
                self._account_put_locked(key)
                self._memtable_put(key, value)
                self.stats.logical_bytes += len(key) + len(value)
            if self._mem_bytes >= self.memtable_bytes:
                self._seal_memtable_locked()
        if not self.background:
            self._drain_inline()
        return len(pairs)

    def _account_put_locked(self, key: bytes) -> None:
        """Keep ``_live_keys`` exact using the cheapest pre-image probe.

        The memtable/immutable probe is free; only keys unseen in
        memory pay a (bloom-guarded, unrecorded) SSTable probe -- and
        only while a count is actually being maintained.
        """
        if self._live_keys is None:
            return
        value = self._memtable.get(key)
        if value is None:
            for imm in reversed(self._immutables):
                value = imm.memtable.get(key)
                if value is not None:
                    break
        if value is not None:
            if value is _TOMBSTONE:
                self._live_keys += 1
            return
        present, _ = self._lookup(key, record=False)
        if not present:
            self._live_keys += 1

    def get(self, key: bytes) -> bytes:
        self._check_open()
        present, value = self._lookup(bytes(key))
        if not present:
            raise KeyNotFound(repr(key))
        return value

    def exists(self, key: bytes) -> bool:
        self._check_open()
        present, _ = self._lookup(bytes(key))
        return present

    def _exists_internal(self, key: bytes) -> bool:
        """Unrecorded presence probe (write-path bookkeeping only)."""
        present, _ = self._lookup(key, record=False)
        return present

    def erase(self, key: bytes) -> None:
        self._check_open()
        key = bytes(key)
        if self.background:
            self._apply_write_pressure()
        with self._lock:
            self._check_open()
            if not self._exists_internal(key):
                raise KeyNotFound(repr(key))
            self._wal_append(b"D" + _U32.pack(len(key)) + key)
            if self._live_keys is not None:
                self._live_keys -= 1
            self._memtable_put(key, _TOMBSTONE)
            self.stats.logical_bytes += len(key)
            if self._mem_bytes >= self.memtable_bytes:
                self._seal_memtable_locked()
        if not self.background:
            self._drain_inline()

    def __len__(self) -> int:
        with self._lock:
            if self._live_keys is None:
                self._live_keys = sum(1 for _ in self.scan())
            return self._live_keys

    def scan(self, start: bytes = b"", inclusive: bool = True,
             end: Optional[bytes] = None) -> Iterator[Tuple[bytes, bytes]]:
        """Merged ordered iteration from ``start``.

        The source set (active memtable, immutables, tables) is
        snapshotted under the lock, so a flush or compaction landing
        mid-scan never changes what this iteration sees: sealed
        memtables stay readable after their SSTable lands, and
        compacted-away tables stay readable through their mmap until
        the iterator drops them.

        With ``end``, the merge stops at the first key ``>= end`` and
        every source iterator is bounded too: a prefix-bounded scan
        reads only the prefix's slice of each sorted run.
        """
        self._check_open()
        with self._lock:
            sources: list = [table.scan(start, end=end)
                             for table in self._sstables]
            for imm in self._immutables:
                sources.append(imm.memtable.scan(start, inclusive=True))
            sources.append(self._memtable.scan(start, inclusive=True))
        heap: list = []
        for age, it in enumerate(sources):
            entry = next(it, None)
            while entry is not None and not inclusive and entry[0] == start:
                entry = next(it, None)
            if entry is not None and (end is None or entry[0] < end):
                value = entry[1]
                if value is _TOMBSTONE:
                    value = None
                heap.append((entry[0], -age, value, it))
        heapq.heapify(heap)
        current_key = None
        while heap:
            key, neg_age, value, it = heapq.heappop(heap)
            self.stats.scan_entries += 1
            nxt = next(it, None)
            if nxt is not None and (end is None or nxt[0] < end):
                if inclusive or nxt[0] != start:
                    raw = nxt[1]
                    if raw is _TOMBSTONE:
                        raw = None
                    heapq.heappush(heap, (nxt[0], neg_age, raw, it))
            if key == current_key:
                continue
            current_key = key
            if value is None or value is _TOMBSTONE:
                continue  # tombstone shadows older values
            yield key, value

    def scan_prefix(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Prefix scan with an explicit upper bound on every sorted run."""
        end = prefix_upper_bound(prefix)
        for key, value in self.scan(prefix, end=end):
            if end is None and not key.startswith(prefix):
                return
            yield key, value

    def list_keys(self, prefix: bytes = b"", start_after: bytes = b"",
                  limit: int = 0) -> list[bytes]:
        end = prefix_upper_bound(prefix)
        out: list[bytes] = []
        if start_after and start_after >= prefix:
            iterator = self.scan(start_after, inclusive=False, end=end)
        else:
            iterator = self.scan(prefix, inclusive=True, end=end)
        for key, _ in iterator:
            if end is None and not key.startswith(prefix):
                break
            out.append(key)
            if limit and len(out) >= limit:
                break
        return out

    # -- observability -------------------------------------------------------

    def lsm_stats(self) -> dict:
        """Counters + live gauges for ``durability_stats()`` / the CLI."""
        with self._lock:
            tiers: dict[int, int] = {}
            for table in self._sstables:
                bucket = self._size_bucket(table.size_bytes)
                tiers[bucket] = tiers.get(bucket, 0) + 1
            stats = self.stats
            return {
                "memtable_bytes": self._mem_bytes,
                "memtable_entries": len(self._memtable),
                "immutables": len(self._immutables),
                "immutable_bytes": sum(i.nbytes for i in self._immutables),
                "sstables": len(self._sstables),
                "tiers": {str(k): v for k, v in sorted(tiers.items())},
                "table_bytes": sum(t.size_bytes for t in self._sstables),
                "compaction_backlog": self.compaction_backlog(),
                "block_cache_bytes": self.block_cache.used_bytes,
                "block_cache_hit_rate": round(stats.block_cache_hit_rate, 4),
                "write_amplification": round(stats.write_amplification, 3),
                "read_amplification": round(stats.read_amplification, 3),
                "flushes": stats.flushes,
                "compactions": stats.compactions,
                "rotations": stats.rotations,
                "flush_seconds": round(stats.flush_seconds, 4),
                "compaction_seconds": round(stats.compaction_seconds, 4),
                "throttle_waits": stats.throttle_waits,
                "backpressure_waits": stats.backpressure_waits,
                "worker_errors": stats.worker_errors,
            }

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        self._check_open()
        with self._lock:
            self._wal.flush()
            os.fsync(self._wal.fileno())

    def close(self) -> None:
        if not self.closed:
            with self._lock:
                self._closing = True
                self._wal.flush()
                self._work.notify_all()
            if self._worker is not None:
                self._worker.join(timeout=30.0)
            with self._lock:
                self._wal.close()
                for table in self._sstables:
                    table.close()
            super().close()

    def crash(self) -> None:
        """Simulate losing the process: the worker abandons any
        half-written table at the next block boundary; nothing buffered
        is flushed beyond what each append already pushed to the OS."""
        with self._lock:
            self._closed = True
            self._crashed = True
            self._closing = True
            self._work.notify_all()
            try:
                self._wal.close()
            except OSError:
                pass
        if self._worker is not None:
            # The dying process takes its xstreams with it: wait for
            # the worker to observe the crash so a restarted backend
            # over the same directory never races its file writes.
            self._worker.join(timeout=30.0)
        super().crash()
