"""Yokan storage backends: in-memory map, LSM tree, copy-on-write B+tree."""
