"""The in-memory backend: the paper's ``std::map`` configuration."""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.errors import KeyNotFound
from repro.utils import SkipListMap
from repro.yokan.backend import Backend, register_backend


@register_backend("map")
class MemoryBackend(Backend):
    """Sorted in-memory store backed by a skip list.

    This is the highest-performing configuration in the paper's
    evaluation (Figure 2's "HEPnOS in-memory" series): no WAL, no disk,
    data lives exactly as long as the service.
    """

    def __init__(self, seed: int = 0x5EED, **_unused):
        super().__init__()
        self._map = SkipListMap(seed=seed)
        self._bytes = 0

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        old = self._map.get(key)
        if old is not None:
            self._bytes -= len(key) + len(old)
        self._map[key] = bytes(value)
        self._bytes += len(key) + len(value)

    def get(self, key: bytes) -> bytes:
        self._check_open()
        value = self._map.get(key)
        if value is None:
            raise KeyNotFound(repr(key))
        return value

    def exists(self, key: bytes) -> bool:
        self._check_open()
        return key in self._map

    def erase(self, key: bytes) -> None:
        self._check_open()
        try:
            value = self._map.pop(key)
        except KeyError:
            raise KeyNotFound(repr(key)) from None
        self._bytes -= len(key) + len(value)

    def __len__(self) -> int:
        return len(self._map)

    @property
    def approximate_bytes(self) -> int:
        """Total key+value payload currently stored."""
        return self._bytes

    def scan(self, start: bytes = b"", inclusive: bool = True
             ) -> Iterator[Tuple[bytes, bytes]]:
        self._check_open()
        return self._map.scan(start, inclusive=inclusive)
