"""Length-prefixed packing for prefix-scan batch loads.

The ``yokan.load_prefix_packed`` RPC moves every key/value pair under a
list of key prefixes in a single bulk transfer.  The buffer layout is
deliberately dumber than the general archive format so both ends can
stream it without object overhead:

- one *group* per requested prefix, in request order;
- each group is ``uvarint(npairs)`` followed by ``npairs`` entries of
  ``uvarint(klen) + key + uvarint(vlen) + value``.

:func:`unpack_groups` returns values as ``memoryview`` slices over the
caller's buffer -- the landing buffer is decoded zero-copy and the
views pin it alive.  Callers that outlive the buffer must copy.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import CorruptionError


def _append_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def pack_groups(groups: Sequence[Iterable[Tuple[bytes, bytes]]]) -> bytes:
    """Pack per-prefix ``(key, value)`` pair groups into one buffer."""
    out = bytearray()
    for pairs in groups:
        pairs = list(pairs)
        _append_uvarint(out, len(pairs))
        for key, value in pairs:
            _append_uvarint(out, len(key))
            out += key
            _append_uvarint(out, len(value))
            out += value
    return bytes(out)


def _read_uvarint(data, pos: int, end: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= end:
            raise CorruptionError("truncated varint in packed buffer")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def unpack_groups(buffer, ngroups: int) -> List[List[Tuple[bytes, memoryview]]]:
    """Decode ``ngroups`` packed pair groups out of ``buffer``.

    Keys come back as ``bytes`` (they are small and get used as dict
    keys); values are zero-copy ``memoryview`` slices of ``buffer``.
    """
    view = buffer if isinstance(buffer, memoryview) else memoryview(buffer)
    end = len(view)
    pos = 0
    groups: List[List[Tuple[bytes, memoryview]]] = []
    for _ in range(ngroups):
        npairs, pos = _read_uvarint(view, pos, end)
        pairs: List[Tuple[bytes, memoryview]] = []
        for _ in range(npairs):
            klen, pos = _read_uvarint(view, pos, end)
            if pos + klen > end:
                raise CorruptionError("truncated key in packed buffer")
            key = bytes(view[pos:pos + klen])
            pos += klen
            vlen, pos = _read_uvarint(view, pos, end)
            if pos + vlen > end:
                raise CorruptionError("truncated value in packed buffer")
            pairs.append((key, view[pos:pos + vlen]))
            pos += vlen
        groups.append(pairs)
    if pos != end:
        raise CorruptionError(
            f"trailing bytes in packed buffer ({end - pos} after "
            f"{ngroups} groups)"
        )
    return groups


__all__ = ["pack_groups", "unpack_groups"]
