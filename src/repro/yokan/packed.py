"""Length-prefixed packing for prefix-scan batch loads.

The ``yokan.load_prefix_packed`` RPC moves every key/value pair under a
list of key prefixes in a single bulk transfer.  The buffer layout is
deliberately dumber than the general archive format so both ends can
stream it without object overhead:

- one *group* per requested prefix, in request order;
- each group is ``uvarint(npairs)`` followed by ``npairs`` entries of
  ``uvarint(klen) + key + uvarint(vlen) + value``.

:func:`unpack_groups` returns values as ``memoryview`` slices over the
caller's buffer -- the landing buffer is decoded zero-copy and the
views pin it alive.  Callers that outlive the buffer must copy.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Tuple

from repro.errors import CorruptionError


def _append_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def pack_groups(groups: Sequence[Iterable[Tuple[bytes, bytes]]]) -> bytes:
    """Pack per-prefix ``(key, value)`` pair groups into one buffer."""
    out = bytearray()
    for pairs in groups:
        pairs = list(pairs)
        _append_uvarint(out, len(pairs))
        for key, value in pairs:
            _append_uvarint(out, len(key))
            out += key
            _append_uvarint(out, len(value))
            out += value
    return bytes(out)


def _read_uvarint(data, pos: int, end: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= end:
            raise CorruptionError("truncated varint in packed buffer")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def unpack_groups(buffer, ngroups: int) -> List[List[Tuple[bytes, memoryview]]]:
    """Decode ``ngroups`` packed pair groups out of ``buffer``.

    Keys come back as ``bytes`` (they are small and get used as dict
    keys); values are zero-copy ``memoryview`` slices of ``buffer``.
    """
    view = buffer if isinstance(buffer, memoryview) else memoryview(buffer)
    end = len(view)
    pos = 0
    groups: List[List[Tuple[bytes, memoryview]]] = []
    for _ in range(ngroups):
        npairs, pos = _read_uvarint(view, pos, end)
        pairs: List[Tuple[bytes, memoryview]] = []
        for _ in range(npairs):
            klen, pos = _read_uvarint(view, pos, end)
            if pos + klen > end:
                raise CorruptionError("truncated key in packed buffer")
            key = bytes(view[pos:pos + klen])
            pos += klen
            vlen, pos = _read_uvarint(view, pos, end)
            if pos + vlen > end:
                raise CorruptionError("truncated value in packed buffer")
            pairs.append((key, view[pos:pos + vlen]))
            pos += vlen
        groups.append(pairs)
    if pos != end:
        raise CorruptionError(
            f"trailing bytes in packed buffer ({end - pos} after "
            f"{ngroups} groups)"
        )
    return groups


# -- prefix framing: the scan_columns request encoding ------------------------


def pack_prefixes(prefixes: Sequence[bytes]) -> Tuple[bytes, bytes]:
    """Frame many prefixes as ``(blob, lengths)`` -- one joined bytes
    plus little-endian uint32 lengths.

    A batch scan ships hundreds of prefix keys per request; framing
    them as two flat byte strings keeps them out of the generic
    archive (one value each instead of one per key) and gives the
    server a hashable whole-request token for its page cache.
    """
    blob = b"".join(prefixes)
    lens = struct.pack(f"<{len(prefixes)}I", *map(len, prefixes))
    return blob, lens


def unpack_prefixes(blob: bytes, lens: bytes) -> List[bytes]:
    """Invert :func:`pack_prefixes`."""
    if len(lens) % 4:
        raise CorruptionError("prefix length table is not uint32-aligned")
    out: List[bytes] = []
    pos = 0
    for i in range(0, len(lens), 4):
        n = int.from_bytes(lens[i:i + 4], "little")
        if pos + n > len(blob):
            raise CorruptionError("prefix blob shorter than its lengths")
        out.append(bytes(blob[pos:pos + n]))
        pos += n
    if pos != len(blob):
        raise CorruptionError(
            f"trailing bytes in prefix blob ({len(blob) - pos})")
    return out


# -- column pages: the scan_columns projection framing -----------------------

#: per-prefix status bytes in a column page.
COL_ABSENT = 0    # no product under the key
COL_ROWS = 1      # columnar: followed by uvarint(row count)
COL_RAW = 2       # row-wise fallback: followed by uvarint(len) + value


def pack_column_page(statuses: Sequence, blocks: Sequence[Tuple[str, bytes]]
                     ) -> bytes:
    """Pack one ``scan_columns`` response page.

    ``statuses`` holds one entry per requested prefix, in request
    order: ``None`` (absent), an ``int`` row count (columnar), or raw
    value ``bytes`` (row-wise fallback for values no column plan
    covers).  ``blocks`` holds one ``(dtype_str, payload)`` per
    requested field, each payload the field's rows concatenated across
    every columnar prefix in order.
    """
    out = bytearray()
    for status in statuses:
        if status is None:
            out.append(COL_ABSENT)
        elif isinstance(status, int):
            out.append(COL_ROWS)
            _append_uvarint(out, status)
        else:
            out.append(COL_RAW)
            _append_uvarint(out, len(status))
            out += status
    for dtype_str, payload in blocks:
        encoded = dtype_str.encode("ascii")
        _append_uvarint(out, len(encoded))
        out += encoded
        _append_uvarint(out, len(payload))
        out += payload
    return bytes(out)


def unpack_column_page(buffer, nprefixes: int, nfields: int
                       ) -> Tuple[list, List[Tuple[str, memoryview]]]:
    """Decode a column page into per-prefix statuses and field blocks.

    Statuses mirror :func:`pack_column_page` except that raw values
    come back as zero-copy ``memoryview`` slices of ``buffer``; block
    payloads are ``memoryview`` slices too (``np.frombuffer``-ready).
    """
    view = buffer if isinstance(buffer, memoryview) else memoryview(buffer)
    end = len(view)
    pos = 0
    statuses: list = []
    for _ in range(nprefixes):
        if pos >= end:
            raise CorruptionError("truncated status in column page")
        tag = view[pos]
        pos += 1
        if tag == COL_ABSENT:
            statuses.append(None)
        elif tag == COL_ROWS:
            count, pos = _read_uvarint(view, pos, end)
            statuses.append(count)
        elif tag == COL_RAW:
            vlen, pos = _read_uvarint(view, pos, end)
            if pos + vlen > end:
                raise CorruptionError("truncated raw value in column page")
            statuses.append(view[pos:pos + vlen])
            pos += vlen
        else:
            raise CorruptionError(f"bad status tag {tag} in column page")
    blocks: List[Tuple[str, memoryview]] = []
    for _ in range(nfields):
        dlen, pos = _read_uvarint(view, pos, end)
        if pos + dlen > end:
            raise CorruptionError("truncated dtype in column page")
        dtype_str = bytes(view[pos:pos + dlen]).decode("ascii")
        pos += dlen
        plen, pos = _read_uvarint(view, pos, end)
        if pos + plen > end:
            raise CorruptionError("truncated column block in column page")
        blocks.append((dtype_str, view[pos:pos + plen]))
        pos += plen
    if pos != end:
        raise CorruptionError(
            f"trailing bytes in column page ({end - pos} after "
            f"{nprefixes} prefixes, {nfields} fields)")
    return statuses, blocks


__all__ = ["pack_groups", "unpack_groups",
           "pack_prefixes", "unpack_prefixes",
           "pack_column_page", "unpack_column_page",
           "COL_ABSENT", "COL_RAW", "COL_ROWS"]
