"""Non-blocking Yokan operations: the OperationFuture.

The blocking client (:class:`~repro.yokan.client.DatabaseHandle`)
forwards an RPC and drives the fabric until the response arrives.  The
non-blocking verbs (``get_nb`` / ``get_multi_nb`` / ``put_multi_nb``)
instead issue the Mercury forward immediately and hand back an
:class:`OperationFuture`; the caller overlaps its own work with the
in-flight request and *retires* the future later with :meth:`wait`.

Retirement runs through the exact same machinery as the blocking path:
the client's :class:`~repro.faults.RetryPolicy` governs re-issues after
transient transport failures (drops, provider crashes, timeouts, wire
corruption), landing-buffer resizes re-issue transparently, and retry /
give-up metrics land in the same counters.  A future is therefore
exactly as fault-tolerant as the blocking call it replaces -- it just
lets the latency hide behind computation (the paper's core speedup
mechanism, section II-D).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.argobots import Eventual
from repro.errors import OperationCancelled
from repro.monitor import tracing as _tracing


class _ResizeNeeded(Exception):
    """Internal: the provider asked for a bigger landing buffer.

    Not a failure -- the finish callback mutates its closure state and
    the operation re-issues immediately, outside the retry budget.
    """


class OperationFuture:
    """One in-flight non-blocking Yokan operation.

    States: ``pending`` (created but not yet forwarded -- only while
    queued behind an :class:`~repro.hepnos.AsyncEngine` window),
    ``inflight`` (forward issued, response outstanding), ``done``
    (result or exception settled), ``cancelled``.

    ``issue`` forwards the RPC and returns the response
    :class:`~repro.argobots.Eventual`; ``finish`` decodes/validates one
    raw response into the final result and may raise ``_ResizeNeeded``
    (re-issue with adjusted closure state) or any retryable error (the
    policy decides whether to re-issue).
    """

    PENDING = "pending"
    INFLIGHT = "inflight"
    DONE = "done"
    CANCELLED = "cancelled"

    def __init__(self, fabric, policy, issue: Callable[[], Eventual],
                 finish: Callable[[bytes], object], description: str = "",
                 on_retry: Optional[Callable] = None,
                 on_giveup: Optional[Callable] = None):
        self._fabric = fabric
        self._policy = policy
        self._issue = issue
        self._finish = finish
        self.description = description
        self._on_retry = on_retry
        self._on_giveup = on_giveup
        self._lock = threading.Lock()
        self._eventual: Optional[Eventual] = None
        self._result = None
        self._exception: Optional[BaseException] = None
        self.state = OperationFuture.PENDING
        #: number of policy-driven re-issues this operation needed
        self.retries = 0
        #: monotonic timestamps for overlap accounting
        self.issued_at: Optional[float] = None
        self.settled_at: Optional[float] = None
        self._callbacks: list[Callable[["OperationFuture"], None]] = []

    @classmethod
    def completed(cls, result, description: str = "") -> "OperationFuture":
        """A future that is already done (empty-input fast paths)."""
        future = cls(None, None, lambda: None, lambda raw: None,
                     description=description)
        future.state = cls.DONE
        future._result = result
        future.issued_at = future.settled_at = time.monotonic()
        return future

    # -- lifecycle ---------------------------------------------------------

    def dispatch(self) -> "OperationFuture":
        """Issue the Mercury forward (idempotent; returns self).

        Called at creation by the non-blocking verbs, or later by an
        AsyncEngine once a window slot frees up.  The forward itself
        may be rejected by the fault model; that counts as a normal
        retryable failure and is retired through the policy on wait.
        """
        with self._lock:
            if self.state is not OperationFuture.PENDING:
                return self
            self.state = OperationFuture.INFLIGHT
        self.issued_at = time.monotonic()
        self._reissue()
        return self

    def _reissue(self) -> None:
        try:
            eventual = self._issue()
        except Exception as exc:  # fault model rejected the send itself
            eventual = Eventual()
            eventual.set_exception(exc)
        self._eventual = eventual
        eventual.add_done_callback(self._mark_settled)

    def _mark_settled(self, _eventual) -> None:
        # Runs on whichever thread produced the response; only used for
        # overlap accounting, so a re-issue simply overwrites it.
        self.settled_at = time.monotonic()

    def cancel(self) -> bool:
        """Cancel iff the operation has not been dispatched yet.

        Returns ``True`` on success; a cancelled future's :meth:`wait`
        raises :class:`~repro.errors.OperationCancelled`.  Once the
        forward is on the wire the operation cannot be recalled (the
        provider may already have executed it) and ``cancel`` returns
        ``False``.
        """
        with self._lock:
            if self.state is not OperationFuture.PENDING:
                return False
            self.state = OperationFuture.CANCELLED
            self._exception = OperationCancelled(
                f"operation {self.description or '?'} cancelled before dispatch"
            )
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
        return True

    # -- inspection --------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state in (OperationFuture.DONE, OperationFuture.CANCELLED)

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def test(self) -> bool:
        """Non-blocking readiness check.

        Opportunistically drives bounded fabric progress (inline mode),
        and finishes the operation if its raw response has landed.  A
        response whose decode demands a re-issue (resize, retryable
        corruption) is re-issued immediately -- without backoff, that
        only happens on the blocking path -- and ``test`` returns
        ``False`` for this round.
        """
        if self.done:
            return True
        if self.state is OperationFuture.PENDING:
            return False
        if not self._eventual.is_ready:
            self._fabric.poll()
        if not self._eventual.is_ready:
            return False
        try:
            raw = self._eventual._unwrap()
            result = self._finish(raw)
        except _ResizeNeeded:
            self._reissue()
            return False
        except BaseException as exc:  # noqa: BLE001 - routed through policy
            if self._policy.retryable(exc) and (
                    self.retries + 1 < self._policy.max_attempts):
                self.retries += 1
                if self._on_retry is not None:
                    self._on_retry(self.retries, exc, 0.0)
                self._reissue()
                return False
            self._settle(exception=exc, giveup=True)
            return True
        self._settle(result=result)
        return True

    # -- retirement --------------------------------------------------------

    def wait(self, timeout: Optional[float] = None):
        """Block until the operation completes; return its result.

        Retires the response through the client's retry policy: a
        retryable failure re-issues the forward with backoff until the
        policy's attempt/deadline budget runs out, exactly like the
        blocking verbs.  ``timeout`` overrides the policy's per-attempt
        ``rpc_timeout`` for this wait.
        """
        if self.state is OperationFuture.DONE:
            return self._unwrap()
        if self.state is OperationFuture.CANCELLED:
            raise self._exception
        self.dispatch()  # queued future waited on directly: jump the queue
        per_attempt = timeout if timeout is not None else self._policy.rpc_timeout

        def attempt():
            if self._eventual is None:
                self._reissue()
            try:
                raw = self._fabric.wait(self._eventual, timeout=per_attempt)
                result = self._finish(raw)
            except _ResizeNeeded:
                self._eventual = None
                return attempt()
            except BaseException:
                self._eventual = None
                raise
            return result

        def on_retry(n, exc, pause):
            self.retries = n
            if self._on_retry is not None:
                self._on_retry(n, exc, pause)

        try:
            result = self._policy.call(attempt, on_retry=on_retry,
                                       on_giveup=self._on_giveup)
        except BaseException as exc:  # noqa: BLE001 - settled, then re-raised
            self._settle(exception=exc)
            raise
        self._settle(result=result)
        return result

    def then(self, callback: Callable[["OperationFuture"], None]
             ) -> "OperationFuture":
        """Run ``callback(self)`` once the future settles (chainable).

        Fires immediately if already settled; otherwise on whichever
        thread completes the future (a ``wait``/``test`` caller or an
        AsyncEngine pump).
        """
        fire = False
        with self._lock:
            if self.done:
                fire = True
            else:
                self._callbacks.append(callback)
        if fire:
            callback(self)
        return self

    def _settle(self, result=None, exception: Optional[BaseException] = None,
                giveup: bool = False) -> None:
        with self._lock:
            if self.done:
                return
            self.state = OperationFuture.DONE
            self._result = result
            self._exception = exception
            callbacks, self._callbacks = self._callbacks, []
        if self.settled_at is None:
            self.settled_at = time.monotonic()
        if giveup and self._on_giveup is not None:
            self._on_giveup(self.retries, exception)
        if exception is not None and _tracing.enabled:
            with _tracing.span("yokan.future.failed", op=self.description) as sp:
                sp.set_tag("error", type(exception).__name__)
                sp.set_tag("retries", self.retries)
        for callback in callbacks:
            callback(self)

    def _unwrap(self):
        if self._exception is not None:
            raise self._exception
        return self._result

    @property
    def result(self):
        """The settled result (only valid once :attr:`done`)."""
        return self._unwrap()

    def overlap_seconds(self, until: float) -> float:
        """Seconds this operation was in flight before ``until``.

        The honest overlap metric: time between the forward going out
        and either the response landing or ``until`` (typically the
        moment the caller started waiting), whichever came first.
        """
        if self.issued_at is None:
            return 0.0
        end = until if self.settled_at is None else min(self.settled_at, until)
        return max(0.0, end - self.issued_at)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"OperationFuture({self.description!r}, state={self.state}, "
                f"retries={self.retries})")
