"""Client-side access to remote Yokan databases.

Every RPC is sealed with a CRC32 envelope (:mod:`repro.yokan.wire`) and
issued under the client's :class:`~repro.faults.RetryPolicy`: transient
failures -- fabric drops, provider-crash address errors, per-call
timeouts, and wire corruption -- are retried with exponential backoff
until the policy's attempt or deadline budget runs out.  All Yokan
operations are idempotent, so retrying is always safe.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

from repro.errors import (
    AddressError,
    CorruptionError,
    KeyNotFound,
    NetworkFailure,
    QuotaExceeded,
    RPCTimeout,
    ServiceBusy,
    YokanError,
)
from repro.faults.retry import RetryPolicy
from repro.mercury import Address, Bulk, Engine
from repro.monitor import tracing as _tracing
from repro.serial import dumps, loads
from repro.yokan import packed, wire
from repro.yokan.nonblocking import OperationFuture, _ResizeNeeded

#: Error kinds that travel over the wire and rehydrate into their
#: original exception types client-side (so the retry policy can tell
#: transient transport failures apart from real database errors).
_ERROR_KINDS = {
    "KeyNotFound": KeyNotFound,
    "CorruptionError": CorruptionError,
    "NetworkFailure": NetworkFailure,
    "RPCTimeout": RPCTimeout,
    "AddressError": AddressError,
    "ServiceBusy": ServiceBusy,
    "QuotaExceeded": QuotaExceeded,
}


def _unwrap(response: bytes):
    decoded = loads(wire.unseal(response))
    status = decoded[0]
    if status == "ok":
        return decoded[1]
    if status == "retry":
        return _Retry(decoded[1])
    kind, message = decoded[1], decoded[2]
    exc_type = _ERROR_KINDS.get(kind)
    if exc_type is not None:
        exc = exc_type(message)
        # 429-style sheds append the server's Retry-After hint; the
        # retry policy prefers it over its exponential schedule.
        if len(decoded) > 3 and decoded[3] is not None:
            exc.retry_after_s = float(decoded[3])
        raise exc
    raise YokanError(f"{kind}: {message}")


class _Retry:
    __slots__ = ("needed",)

    def __init__(self, needed: int):
        self.needed = needed


class DatabaseHandle:
    """A client handle to one named database at one provider."""

    #: Values larger than this travel by bulk transfer (RDMA) instead of
    #: inline in the RPC payload, mirroring Yokan's small/large split.
    BULK_THRESHOLD = 8192

    def __init__(self, client: "YokanClient", target: Address,
                 provider_id: int, name: str):
        self.client = client
        self.target = target
        self.provider_id = provider_id
        self.name = name
        self._engine = client.engine

    def _seal(self, body) -> bytes:
        """Seal a payload, adding the tenant envelope inside a session.

        Clients without a tenant context (system traffic, legacy
        callers) produce byte-identical envelopes to previous releases.
        """
        envelope = wire.seal(body)
        prefix = self.client._tenant_prefix
        if prefix is not None:
            return prefix + envelope
        return envelope

    def _call(self, rpc: str, payload,
              _validate: Optional[Callable] = None, **trace_tags) -> object:
        """Forward one RPC under the client's retry policy.

        ``_validate`` (if given) runs on the decoded result inside the
        retry loop, so e.g. a bulk-buffer checksum failure re-issues the
        whole RPC rather than surfacing to the caller.
        """
        if _tracing.enabled:
            with _tracing.span(f"yokan.client.{rpc.split('.', 1)[1]}",
                               db=self.name, target=str(self.target),
                               **trace_tags) as sp:
                result = self._call_inner(rpc, payload, sp, _validate)
            return result
        return self._call_inner(rpc, payload, None, _validate)

    def _call_inner(self, rpc: str, payload, span,
                    validate: Optional[Callable] = None) -> object:
        handle = self._engine.create_handle(self.target, rpc)
        encoded = self._seal(dumps(payload))
        policy = self.client.retry_policy

        def attempt():
            result = _unwrap(handle.forward(encoded, self.provider_id,
                                            timeout=policy.rpc_timeout))
            if validate is not None:
                validate(result)
            return result

        def on_retry(n, exc, pause):
            self.client._record_retry(exc)
            if span is not None:
                span.set_tag("retries", n)
                span.set_tag("error", type(exc).__name__)

        def on_giveup(n, exc):
            self.client._record_giveup(exc)
            self._tag_failure(exc)
            if span is not None:
                span.set_tag("error", type(exc).__name__)
                span.set_tag("gave_up", True)

        return policy.call(attempt, on_retry=on_retry, on_giveup=on_giveup)

    def _tag_failure(self, exc: BaseException) -> None:
        """Stamp the failed target onto a given-up exception.

        The datastore's failover step reads these attributes to decide
        which shard died and which backup to promote.
        """
        exc.failed_address = str(self.target)
        exc.failed_provider_id = self.provider_id
        exc.failed_db = self.name

    # -- single-item operations ------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        key, value = bytes(key), bytes(value)
        if len(value) > self.BULK_THRESHOLD:
            # Large object: one RPC carrying a bulk descriptor; the
            # server pulls the value by RDMA.
            self.put_multi([(key, value)])
            return
        self._call("yokan.put", (self.name, key, value))

    def get(self, key: bytes) -> bytes:
        key = bytes(key)
        result = self._call(
            "yokan.get", (self.name, key, self.BULK_THRESHOLD)
        )
        if isinstance(result, tuple) and result and result[0] == "large":
            # Second round trip moves the value by bulk transfer.
            (value,) = self.get_multi([key], size_hint=result[1] + 64)
            if value is None:
                raise KeyNotFound(repr(key))
            return value
        return result

    def exists(self, key: bytes) -> bool:
        return self._call("yokan.exists", (self.name, bytes(key)))

    def erase(self, key: bytes) -> None:
        self._call("yokan.erase", (self.name, bytes(key)))

    def erase_multi(self, keys) -> int:
        """Remove many keys in one RPC; missing keys are skipped."""
        keys = [bytes(k) for k in keys]
        if not keys:
            return 0
        return self._call("yokan.erase_multi", (self.name, keys),
                          keys=len(keys))

    def replicate(self, pairs: Iterable[Tuple[bytes, bytes]] = (),
                  erase_keys: Iterable[bytes] = ()) -> Tuple[int, int]:
        """Apply mutations *without* re-forwarding to this database's
        own replica (the primary->backup and re-sync verb)."""
        pairs = [(bytes(k), bytes(v)) for k, v in pairs]
        keys = [bytes(k) for k in erase_keys]
        if not pairs and not keys:
            return (0, 0)
        stored, removed = self._call(
            "yokan.replicate", (self.name, pairs, keys),
            keys=len(pairs) + len(keys),
        )
        return stored, removed

    def sync(self, checkpoint: bool = False) -> dict:
        """Drain this provider's replica links and flush its backends."""
        return self._call("yokan.sync", {"checkpoint": checkpoint})

    def __len__(self) -> int:
        return self._call("yokan.length", self.name)

    # -- batched operations (bulk transfers) -----------------------------------

    def put_multi(self, pairs: Iterable[Tuple[bytes, bytes]]) -> int:
        """Store many pairs with one RPC + one RDMA pull.

        The RPC carries the CRC of the packed buffer; the provider
        verifies it after the pull, so a corrupted bulk transfer fails
        the call (retryably) instead of storing damaged values.
        """
        pairs = [(bytes(k), bytes(v)) for k, v in pairs]
        if not pairs:
            return 0
        packed = bytearray(dumps(pairs))
        bulk = self._engine.expose(packed, Bulk.READ_ONLY)
        return self._call(
            "yokan.put_multi",
            (self.name, bulk, len(packed), wire.checksum(packed)),
            keys=len(pairs), bytes=len(packed),
        )

    def get_multi(self, keys: Sequence[bytes],
                  size_hint: int = 0) -> list[Optional[bytes]]:
        """Fetch many keys with one RPC + one RDMA push-back.

        Missing keys come back as ``None``.  ``size_hint`` presizes the
        landing buffer; an undersized buffer costs one retry round-trip.
        The provider responds with the packed size and its CRC; the
        landing buffer is verified before decoding, inside the retry
        loop, so a corrupted push re-issues the RPC.
        """
        keys = [bytes(k) for k in keys]
        if not keys:
            return []
        capacity = size_hint or (64 * len(keys) + 1024)
        while True:
            buffer = bytearray(capacity)
            bulk = self._engine.expose(buffer, Bulk.READ_WRITE)

            def check(result, _buffer=buffer):
                if isinstance(result, _Retry):
                    return
                nbytes, crc = result
                wire.verify_bulk(memoryview(_buffer)[:nbytes], crc,
                                 "get_multi landing buffer")

            result = self._call(
                "yokan.get_multi", (self.name, keys, bulk, capacity),
                keys=len(keys), _validate=check,
            )
            if isinstance(result, _Retry):
                capacity = result.needed
                continue
            nbytes, _crc = result
            # Zero-copy decode straight out of the landing buffer; only
            # the individual values are materialized as bytes.
            return loads(memoryview(buffer)[:nbytes])

    def load_prefix_packed(self, prefixes: Sequence[bytes],
                           size_hint: int = 0
                           ) -> list[list[Tuple[bytes, memoryview]]]:
        """Fetch *all* pairs under each prefix: one RPC, one RDMA push.

        Returns one group per prefix, in request order; values are
        zero-copy ``memoryview`` slices of the landing buffer (the views
        pin it, copy if you need the bytes to outlive the result).  The
        packed buffer's CRC is verified inside the retry loop, so a
        corrupted push re-issues the RPC; an undersized landing buffer
        costs one retry round-trip with the provider's requested size.
        """
        prefixes = [bytes(p) for p in prefixes]
        if not prefixes:
            return []
        capacity = size_hint or (4096 * len(prefixes))
        while True:
            buffer = bytearray(capacity)
            bulk = self._engine.expose(buffer, Bulk.READ_WRITE)

            def check(result, _buffer=buffer):
                if isinstance(result, _Retry):
                    return
                _ngroups, nbytes, crc = result
                wire.verify_bulk(memoryview(_buffer)[:nbytes], crc,
                                 "load_prefix_packed landing buffer")

            result = self._call(
                "yokan.load_prefix_packed",
                (self.name, prefixes, bulk, capacity),
                prefixes=len(prefixes), _validate=check,
            )
            if isinstance(result, _Retry):
                capacity = result.needed
                continue
            ngroups, nbytes, _crc = result
            return packed.unpack_groups(memoryview(buffer)[:nbytes], ngroups)

    def scan_columns(self, prefixes: Sequence[bytes], suffix: bytes,
                     fields: Sequence[str], size_hint: int = 0
                     ) -> Tuple[list, list]:
        """Server-side projection: fetch only ``fields`` of each product.

        For every ``prefix + suffix`` product key the provider decodes
        the stored value and ships just the requested columns,
        concatenated per field into one CRC-checked page
        (:func:`repro.yokan.packed.unpack_column_page`).  Returns
        ``(statuses, blocks)``: one status per prefix (``None`` absent,
        row count when columnar, raw value ``memoryview`` fallback) and
        one ``(dtype_str, payload)`` block per field.  Values without a
        column plan travel row-wise, so projection narrows the data but
        never changes it.
        """
        prefixes = [bytes(p) for p in prefixes]
        fields = [str(f) for f in fields]
        if not prefixes:
            return [], [("O", memoryview(b"")) for _ in fields]
        blob, lens = packed.pack_prefixes(prefixes)
        capacity = size_hint or (64 * len(prefixes) * max(1, len(fields)))
        while True:
            buffer = bytearray(capacity)
            bulk = self._engine.expose(buffer, Bulk.READ_WRITE)

            def check(result, _buffer=buffer):
                if isinstance(result, _Retry):
                    return
                _nprefixes, nbytes, crc = result
                wire.verify_bulk(memoryview(_buffer)[:nbytes], crc,
                                 "scan_columns landing buffer")

            result = self._call(
                "yokan.scan_columns",
                (self.name, blob, lens, bytes(suffix), fields, bulk,
                 capacity),
                prefixes=len(prefixes), fields=len(fields), _validate=check,
            )
            if isinstance(result, _Retry):
                capacity = result.needed
                continue
            nprefixes, nbytes, _crc = result
            return packed.unpack_column_page(
                memoryview(buffer)[:nbytes], nprefixes, len(fields))

    # -- non-blocking operations ------------------------------------------

    def _future(self, issue, finish, description: str,
                dispatch: bool = True) -> OperationFuture:
        client = self.client

        def on_giveup(n, exc):
            client._record_giveup(exc)
            self._tag_failure(exc)

        future = OperationFuture(
            self._engine.fabric, client.retry_policy, issue, finish,
            description=description,
            on_retry=lambda n, exc, pause: client._record_retry(exc),
            on_giveup=on_giveup,
        )
        # dispatch=False leaves the future PENDING (still cancellable);
        # an AsyncEngine dispatches it when its in-flight window allows.
        return future.dispatch() if dispatch else future

    def get_nb(self, key: bytes, *, dispatch: bool = True
               ) -> OperationFuture:
        """Non-blocking :meth:`get`: forward now, retire later.

        Returns an :class:`~repro.yokan.OperationFuture` resolving to
        the value bytes.  A value above :attr:`BULK_THRESHOLD` switches
        to the bulk protocol on re-issue, exactly like the blocking
        two-phase ``get``; retirement runs under the client's retry
        policy.
        """
        key = bytes(key)
        h_inline = self._engine.create_handle(self.target, "yokan.get")
        h_bulk = self._engine.create_handle(self.target, "yokan.get_multi")
        state = {"mode": "inline", "capacity": 0, "buffer": None}

        def issue():
            if state["mode"] == "inline":
                payload = self._seal(dumps((self.name, key,
                                            self.BULK_THRESHOLD)))
                return h_inline.iforward(payload, self.provider_id)
            buffer = bytearray(state["capacity"])
            # The Bulk object must outlive the RPC: regions are tracked
            # weakly (see repro.mercury.bulk), so pin it in the closure.
            state["buffer"] = buffer
            state["bulk"] = self._engine.expose(buffer, Bulk.READ_WRITE)
            payload = self._seal(dumps((self.name, [key], state["bulk"],
                                        state["capacity"])))
            return h_bulk.iforward(payload, self.provider_id)

        def finish(raw):
            result = _unwrap(raw)
            if state["mode"] == "inline":
                if isinstance(result, tuple) and result and result[0] == "large":
                    state["mode"] = "bulk"
                    state["capacity"] = result[1] + 64
                    raise _ResizeNeeded()
                return result
            if isinstance(result, _Retry):
                state["capacity"] = result.needed
                raise _ResizeNeeded()
            nbytes, crc = result
            wire.verify_bulk(memoryview(state["buffer"])[:nbytes], crc,
                             "get landing buffer")
            (value,) = loads(memoryview(state["buffer"])[:nbytes])
            if value is None:
                raise KeyNotFound(repr(key))
            return value

        return self._future(issue, finish, f"get@{self.name}",
                            dispatch=dispatch)

    def get_multi_nb(self, keys: Sequence[bytes], size_hint: int = 0,
                     *, dispatch: bool = True) -> OperationFuture:
        """Non-blocking :meth:`get_multi`.

        The landing buffer lives in the future's closure; an undersized
        buffer re-issues with the provider's requested capacity (not
        charged against the retry budget), and the landing-buffer CRC is
        verified inside the retirement loop so a corrupted RDMA push
        re-issues the RPC like the blocking path.
        """
        keys = [bytes(k) for k in keys]
        if not keys:
            return OperationFuture.completed([], f"get_multi[0]@{self.name}")
        handle = self._engine.create_handle(self.target, "yokan.get_multi")
        state = {"capacity": size_hint or (64 * len(keys) + 1024),
                 "buffer": None, "bulk": None}

        def issue():
            buffer = bytearray(state["capacity"])
            # Pin the Bulk in the closure: regions are weakly tracked,
            # and the provider's RDMA push may land long after issue.
            state["buffer"] = buffer
            state["bulk"] = self._engine.expose(buffer, Bulk.READ_WRITE)
            payload = self._seal(dumps((self.name, keys, state["bulk"],
                                        state["capacity"])))
            return handle.iforward(payload, self.provider_id)

        def finish(raw):
            result = _unwrap(raw)
            if isinstance(result, _Retry):
                state["capacity"] = result.needed
                raise _ResizeNeeded()
            nbytes, crc = result
            wire.verify_bulk(memoryview(state["buffer"])[:nbytes], crc,
                             "get_multi landing buffer")
            return loads(memoryview(state["buffer"])[:nbytes])

        return self._future(issue, finish,
                            f"get_multi[{len(keys)}]@{self.name}",
                            dispatch=dispatch)

    def load_prefix_packed_nb(self, prefixes: Sequence[bytes],
                              size_hint: int = 0, *, dispatch: bool = True
                              ) -> OperationFuture:
        """Non-blocking :meth:`load_prefix_packed`.

        Resolves to the same list of per-prefix groups.  The landing
        buffer lives in the future's closure (the zero-copy views pin
        it); an undersized buffer re-issues with the provider's
        requested capacity, and the packed buffer's CRC is verified
        inside the retirement loop.  The datastore issues one of these
        per involved shard so packed scans fan out concurrently.
        """
        prefixes = [bytes(p) for p in prefixes]
        if not prefixes:
            return OperationFuture.completed(
                [], f"load_prefix_packed[0]@{self.name}")
        handle = self._engine.create_handle(self.target,
                                            "yokan.load_prefix_packed")
        state = {"capacity": size_hint or (4096 * len(prefixes)),
                 "buffer": None, "bulk": None}

        def issue():
            buffer = bytearray(state["capacity"])
            # Pin the Bulk in the closure: regions are weakly tracked,
            # and the provider's RDMA push may land long after issue.
            state["buffer"] = buffer
            state["bulk"] = self._engine.expose(buffer, Bulk.READ_WRITE)
            payload = self._seal(dumps((self.name, prefixes, state["bulk"],
                                        state["capacity"])))
            return handle.iforward(payload, self.provider_id)

        def finish(raw):
            result = _unwrap(raw)
            if isinstance(result, _Retry):
                state["capacity"] = result.needed
                raise _ResizeNeeded()
            ngroups, nbytes, crc = result
            wire.verify_bulk(memoryview(state["buffer"])[:nbytes], crc,
                             "load_prefix_packed landing buffer")
            return packed.unpack_groups(
                memoryview(state["buffer"])[:nbytes], ngroups)

        return self._future(issue, finish,
                            f"load_prefix_packed[{len(prefixes)}]"
                            f"@{self.name}",
                            dispatch=dispatch)

    def scan_columns_nb(self, prefixes: Sequence[bytes], suffix: bytes,
                        fields: Sequence[str], size_hint: int = 0,
                        *, dispatch: bool = True) -> OperationFuture:
        """Non-blocking :meth:`scan_columns`.

        Resolves to the same ``(statuses, blocks)`` page.  The landing
        buffer lives in the future's closure (the zero-copy column
        views pin it); an undersized buffer re-issues with the
        provider's requested capacity, and the page CRC is verified
        inside the retirement loop.  The datastore issues one of these
        per involved shard so projections fan out concurrently.
        """
        prefixes = [bytes(p) for p in prefixes]
        fields = [str(f) for f in fields]
        if not prefixes:
            return OperationFuture.completed(
                ([], [("O", memoryview(b"")) for _ in fields]),
                f"scan_columns[0]@{self.name}")
        handle = self._engine.create_handle(self.target,
                                            "yokan.scan_columns")
        suffix = bytes(suffix)
        # Flat framing: hundreds of prefix keys travel as two byte
        # strings instead of one archive value per key, and the blob
        # doubles as the server's page-cache token.
        blob, lens = packed.pack_prefixes(prefixes)
        state = {"capacity":
                 size_hint or (64 * len(prefixes) * max(1, len(fields))),
                 "buffer": None, "bulk": None}

        def issue():
            buffer = bytearray(state["capacity"])
            # Pin the Bulk in the closure: regions are weakly tracked,
            # and the provider's RDMA push may land long after issue.
            state["buffer"] = buffer
            state["bulk"] = self._engine.expose(buffer, Bulk.READ_WRITE)
            payload = self._seal(dumps((self.name, blob, lens, suffix,
                                        fields, state["bulk"],
                                        state["capacity"])))
            return handle.iforward(payload, self.provider_id)

        def finish(raw):
            result = _unwrap(raw)
            if isinstance(result, _Retry):
                state["capacity"] = result.needed
                raise _ResizeNeeded()
            nprefixes, nbytes, crc = result
            wire.verify_bulk(memoryview(state["buffer"])[:nbytes], crc,
                             "scan_columns landing buffer")
            return packed.unpack_column_page(
                memoryview(state["buffer"])[:nbytes], nprefixes, len(fields))

        return self._future(issue, finish,
                            f"scan_columns[{len(prefixes)}]@{self.name}",
                            dispatch=dispatch)

    def put_multi_nb(self, pairs: Iterable[Tuple[bytes, bytes]],
                     *, dispatch: bool = True) -> OperationFuture:
        """Non-blocking :meth:`put_multi`; resolves to the pair count.

        The packed source buffer (and its bulk descriptor) stay alive in
        the future's closure until retirement, so the provider's RDMA
        pull always finds them -- including on policy-driven re-issues.
        """
        pairs = [(bytes(k), bytes(v)) for k, v in pairs]
        if not pairs:
            return OperationFuture.completed(0, f"put_multi[0]@{self.name}")
        handle = self._engine.create_handle(self.target, "yokan.put_multi")
        packed = bytearray(dumps(pairs))
        bulk = self._engine.expose(packed, Bulk.READ_ONLY)
        payload = self._seal(dumps((self.name, bulk, len(packed),
                                    wire.checksum(packed))))

        def issue(_pinned=(packed, bulk)):
            # Default arg pins the packed buffer and its (weakly
            # tracked) bulk region for the life of the future.
            return handle.iforward(payload, self.provider_id)

        return self._future(issue, _unwrap,
                            f"put_multi[{len(pairs)}]@{self.name}",
                            dispatch=dispatch)

    def replicate_nb(self, pairs: Iterable[Tuple[bytes, bytes]] = (),
                     erase_keys: Iterable[bytes] = (),
                     *, dispatch: bool = True) -> OperationFuture:
        """Non-blocking :meth:`replicate`; resolves to (stored, removed).

        This is what a primary's :class:`~repro.yokan.provider.ReplicaLink`
        issues per acknowledged mutation: the payload is pinned in the
        closure so policy-driven re-issues resend identical bytes.
        """
        pairs = [(bytes(k), bytes(v)) for k, v in pairs]
        keys = [bytes(k) for k in erase_keys]
        if not pairs and not keys:
            return OperationFuture.completed((0, 0),
                                             f"replicate[0]@{self.name}")
        handle = self._engine.create_handle(self.target, "yokan.replicate")
        payload = self._seal(dumps((self.name, pairs, keys)))

        def issue():
            return handle.iforward(payload, self.provider_id)

        return self._future(issue, _unwrap,
                            f"replicate[{len(pairs) + len(keys)}]"
                            f"@{self.name}",
                            dispatch=dispatch)

    # -- iteration --------------------------------------------------------

    def list_keys(self, prefix: bytes = b"", start_after: bytes = b"",
                  limit: int = 0) -> list[bytes]:
        return self._call(
            "yokan.list_keys", (self.name, bytes(prefix), bytes(start_after), limit)
        )

    def list_keyvals(self, prefix: bytes = b"", start_after: bytes = b"",
                     limit: int = 0) -> list[Tuple[bytes, bytes]]:
        return self._call(
            "yokan.list_keyvals",
            (self.name, bytes(prefix), bytes(start_after), limit),
        )

    def count_prefix(self, prefix: bytes = b"") -> int:
        return self._call("yokan.count_prefix", (self.name, bytes(prefix)))

    def iter_keys(self, prefix: bytes = b"", batch: int = 128):
        """Generator over keys with ``prefix``, paging ``batch`` at a time."""
        start_after = b""
        while True:
            page = self.list_keys(prefix, start_after, batch)
            if not page:
                return
            yield from page
            start_after = page[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DatabaseHandle({self.name!r} @ {self.target} "
            f"provider {self.provider_id})"
        )


class YokanClient:
    """Factory for database handles, bound to a client engine.

    Retry behaviour is governed by ``retry_policy``
    (:class:`~repro.faults.RetryPolicy`).  The legacy ``retries``
    integer is still accepted (and settable) and maps to a flat,
    zero-delay policy of ``retries + 1`` attempts; 0 = fail fast.

    ``metrics`` (a :class:`~repro.monitor.MetricRegistry`) receives
    ``yokan.client.retries`` / ``yokan.client.giveups`` counters plus
    per-error-kind breakdowns when provided.

    ``tenant`` (a :class:`~repro.yokan.wire.TenantEnvelope`) tags every
    request this client issues with a tenant identity, priority class,
    and quota token, so the server-side request broker can meter it.
    ``None`` (the default) sends untagged system traffic that bypasses
    admission control -- byte-identical to previous releases.
    """

    def __init__(self, engine: Engine, retries: int = 0,
                 retry_policy: Optional[RetryPolicy] = None,
                 metrics=None,
                 tenant: Optional[wire.TenantEnvelope] = None):
        self.engine = engine
        if retry_policy is None:
            retry_policy = RetryPolicy.from_retries(max(0, retries))
        self.retry_policy = retry_policy
        self.metrics = metrics
        self.tenant = tenant
        #: the identity's constant wire prefix, encoded once per client
        self._tenant_prefix = (
            wire.tenant_prefix(tenant.tenant, tenant.priority, tenant.token)
            if tenant is not None else None)

    @property
    def retries(self) -> int:
        """Legacy view of the policy: number of re-sends after the first try."""
        return self.retry_policy.max_attempts - 1

    @retries.setter
    def retries(self, value: int) -> None:
        self.retry_policy = RetryPolicy.from_retries(max(0, int(value)))

    def _record_retry(self, exc: BaseException) -> None:
        if self.metrics is not None:
            self.metrics.counter("yokan.client.retries").inc()
            self.metrics.counter(
                f"yokan.client.retries.{type(exc).__name__}").inc()

    def _record_giveup(self, exc: BaseException) -> None:
        if self.metrics is not None:
            self.metrics.counter("yokan.client.giveups").inc()

    def _admin_call(self, target: Union[str, Address], rpc_name: str,
                    payload, provider_id: int):
        address = Address.parse(target) if isinstance(target, str) else target
        handle = self.engine.create_handle(address, rpc_name)
        encoded = wire.seal(dumps(payload))
        policy = self.retry_policy

        def attempt():
            return _unwrap(handle.forward(encoded, provider_id,
                                          timeout=policy.rpc_timeout))

        return policy.call(
            attempt,
            on_retry=lambda n, exc, pause: self._record_retry(exc),
            on_giveup=lambda n, exc: self._record_giveup(exc),
        )

    def database_handle(self, target: Union[str, Address], provider_id: int,
                        name: str) -> DatabaseHandle:
        address = Address.parse(target) if isinstance(target, str) else target
        return DatabaseHandle(self, address, provider_id, name)

    def list_databases(self, target: Union[str, Address],
                       provider_id: int = 0) -> list[str]:
        return self._admin_call(target, "yokan.list_databases", None,
                                provider_id)

    def sync(self, target: Union[str, Address], provider_id: int = 0,
             checkpoint: bool = False) -> dict:
        """Drain a provider's replica links and flush its backends."""
        return self._admin_call(target, "yokan.sync",
                                {"checkpoint": checkpoint}, provider_id)

    def create_database(self, target: Union[str, Address], provider_id: int,
                        name: str, kind: str = "map",
                        config: Optional[dict] = None) -> DatabaseHandle:
        self._admin_call(target, "yokan.create_database",
                         (name, kind, config or {}), provider_id)
        address = Address.parse(target) if isinstance(target, str) else target
        return self.database_handle(address, provider_id, name)
