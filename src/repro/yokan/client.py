"""Client-side access to remote Yokan databases."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.errors import KeyNotFound, NetworkFailure, YokanError
from repro.mercury import Address, Bulk, Engine
from repro.monitor import tracing as _tracing
from repro.serial import dumps, loads


def _unwrap(response: bytes):
    decoded = loads(response)
    status = decoded[0]
    if status == "ok":
        return decoded[1]
    if status == "retry":
        return _Retry(decoded[1])
    kind, message = decoded[1], decoded[2]
    if kind == "KeyNotFound":
        raise KeyNotFound(message)
    raise YokanError(f"{kind}: {message}")


class _Retry:
    __slots__ = ("needed",)

    def __init__(self, needed: int):
        self.needed = needed


class DatabaseHandle:
    """A client handle to one named database at one provider."""

    #: Values larger than this travel by bulk transfer (RDMA) instead of
    #: inline in the RPC payload, mirroring Yokan's small/large split.
    BULK_THRESHOLD = 8192

    def __init__(self, client: "YokanClient", target: Address,
                 provider_id: int, name: str):
        self.client = client
        self.target = target
        self.provider_id = provider_id
        self.name = name
        self._engine = client.engine

    def _call(self, rpc: str, payload, **trace_tags) -> object:
        """Forward one RPC, retrying transient fabric drops.

        The paper reports runs crashing on Aries injection-bandwidth
        oversaturation; a bounded retry is the client-side mitigation.
        All Yokan operations are idempotent, so retrying is safe.
        """
        if _tracing.enabled:
            with _tracing.span(f"yokan.client.{rpc.split('.', 1)[1]}",
                               db=self.name, target=str(self.target),
                               **trace_tags) as sp:
                result = self._call_inner(rpc, payload, sp)
            return result
        return self._call_inner(rpc, payload, None)

    def _call_inner(self, rpc: str, payload, span) -> object:
        handle = self._engine.create_handle(self.target, rpc)
        encoded = dumps(payload)
        attempts = self.client.retries + 1
        for attempt in range(attempts):
            try:
                if span is not None and attempt:
                    span.set_tag("retries", attempt)
                return _unwrap(handle.forward(encoded, self.provider_id))
            except NetworkFailure:
                if attempt == attempts - 1:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    # -- single-item operations ------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        key, value = bytes(key), bytes(value)
        if len(value) > self.BULK_THRESHOLD:
            # Large object: one RPC carrying a bulk descriptor; the
            # server pulls the value by RDMA.
            self.put_multi([(key, value)])
            return
        self._call("yokan.put", (self.name, key, value))

    def get(self, key: bytes) -> bytes:
        key = bytes(key)
        result = self._call(
            "yokan.get", (self.name, key, self.BULK_THRESHOLD)
        )
        if isinstance(result, tuple) and result and result[0] == "large":
            # Second round trip moves the value by bulk transfer.
            (value,) = self.get_multi([key], size_hint=result[1] + 64)
            if value is None:
                raise KeyNotFound(repr(key))
            return value
        return result

    def exists(self, key: bytes) -> bool:
        return self._call("yokan.exists", (self.name, bytes(key)))

    def erase(self, key: bytes) -> None:
        self._call("yokan.erase", (self.name, bytes(key)))

    def erase_multi(self, keys) -> int:
        """Remove many keys in one RPC; missing keys are skipped."""
        keys = [bytes(k) for k in keys]
        if not keys:
            return 0
        return self._call("yokan.erase_multi", (self.name, keys),
                          keys=len(keys))

    def __len__(self) -> int:
        return self._call("yokan.length", self.name)

    # -- batched operations (bulk transfers) -----------------------------------

    def put_multi(self, pairs: Iterable[Tuple[bytes, bytes]]) -> int:
        """Store many pairs with one RPC + one RDMA pull."""
        pairs = [(bytes(k), bytes(v)) for k, v in pairs]
        if not pairs:
            return 0
        packed = bytearray(dumps(pairs))
        bulk = self._engine.expose(packed, Bulk.READ_ONLY)
        return self._call("yokan.put_multi", (self.name, bulk, len(packed)),
                          keys=len(pairs), bytes=len(packed))

    def get_multi(self, keys: Sequence[bytes],
                  size_hint: int = 0) -> list[Optional[bytes]]:
        """Fetch many keys with one RPC + one RDMA push-back.

        Missing keys come back as ``None``.  ``size_hint`` presizes the
        landing buffer; an undersized buffer costs one retry round-trip.
        """
        keys = [bytes(k) for k in keys]
        if not keys:
            return []
        capacity = size_hint or (64 * len(keys) + 1024)
        while True:
            buffer = bytearray(capacity)
            bulk = self._engine.expose(buffer, Bulk.READ_WRITE)
            result = self._call(
                "yokan.get_multi", (self.name, keys, bulk, capacity),
                keys=len(keys),
            )
            if isinstance(result, _Retry):
                capacity = result.needed
                continue
            return loads(bytes(buffer[:result]))

    # -- iteration --------------------------------------------------------

    def list_keys(self, prefix: bytes = b"", start_after: bytes = b"",
                  limit: int = 0) -> list[bytes]:
        return self._call(
            "yokan.list_keys", (self.name, bytes(prefix), bytes(start_after), limit)
        )

    def list_keyvals(self, prefix: bytes = b"", start_after: bytes = b"",
                     limit: int = 0) -> list[Tuple[bytes, bytes]]:
        return self._call(
            "yokan.list_keyvals",
            (self.name, bytes(prefix), bytes(start_after), limit),
        )

    def count_prefix(self, prefix: bytes = b"") -> int:
        return self._call("yokan.count_prefix", (self.name, bytes(prefix)))

    def iter_keys(self, prefix: bytes = b"", batch: int = 128):
        """Generator over keys with ``prefix``, paging ``batch`` at a time."""
        start_after = b""
        while True:
            page = self.list_keys(prefix, start_after, batch)
            if not page:
                return
            yield from page
            start_after = page[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DatabaseHandle({self.name!r} @ {self.target} "
            f"provider {self.provider_id})"
        )


class YokanClient:
    """Factory for database handles, bound to a client engine.

    ``retries`` bounds re-sends after transient
    :class:`~repro.errors.NetworkFailure` drops (0 = fail fast).
    """

    def __init__(self, engine: Engine, retries: int = 0):
        self.engine = engine
        self.retries = max(0, retries)

    def database_handle(self, target: Union[str, Address], provider_id: int,
                        name: str) -> DatabaseHandle:
        address = Address.parse(target) if isinstance(target, str) else target
        return DatabaseHandle(self, address, provider_id, name)

    def list_databases(self, target: Union[str, Address],
                       provider_id: int = 0) -> list[str]:
        address = Address.parse(target) if isinstance(target, str) else target
        handle = self.engine.create_handle(address, "yokan.list_databases")
        return _unwrap(handle.forward(dumps(None), provider_id))

    def create_database(self, target: Union[str, Address], provider_id: int,
                        name: str, kind: str = "map",
                        config: Optional[dict] = None) -> DatabaseHandle:
        address = Address.parse(target) if isinstance(target, str) else target
        handle = self.engine.create_handle(address, "yokan.create_database")
        _unwrap(handle.forward(dumps((name, kind, config or {})), provider_id))
        return self.database_handle(address, provider_id, name)
