"""The Yokan provider: serves key-value databases over Mercury RPCs.

One provider manages any number of named databases and is addressed by
``(engine address, provider_id)``.  Small operations travel inline in
RPC payloads; batched operations (``put_multi``, ``get_multi``) move
their data with RDMA-style bulk transfers, matching the paper's
"RPC for single small objects, RDMA for large objects or batches".
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Optional

from repro.argobots import Pool, ult_yield
from repro.errors import (
    CorruptionError,
    KeyNotFound,
    ReproError,
    ServiceBusy,
    YokanError,
)
from repro.mercury import Bulk, BulkOp, Engine, RPCRequest
from repro.monitor import tracing as _tracing
from repro.serial import dumps, loads
from repro.serial import columnar as _columnar
from repro.yokan import packed, wire
from repro.yokan.backend import Backend, open_backend

#: RPC names served by every Yokan provider.
RPC_NAMES = (
    "yokan.put",
    "yokan.put_multi",
    "yokan.get",
    "yokan.get_multi",
    "yokan.load_prefix_packed",
    "yokan.scan_columns",
    "yokan.exists",
    "yokan.erase",
    "yokan.erase_multi",
    "yokan.length",
    "yokan.list_keys",
    "yokan.list_keyvals",
    "yokan.count_prefix",
    "yokan.list_databases",
    "yokan.create_database",
    "yokan.replicate",
    "yokan.sync",
)


#: what a handler converts into a wire error response: the service's
#: own exception hierarchy plus malformed-payload decode errors.
#: Anything else (a genuine server bug) propagates and fails the RPC.
_HANDLED_ERRORS = (ReproError, ValueError, TypeError, KeyError)


def _ok(value=None) -> bytes:
    return dumps(("ok", value))


def _err(exc: BaseException) -> bytes:
    kind = "KeyNotFound" if isinstance(exc, KeyNotFound) else type(exc).__name__
    # 429-style sheds carry their server-supplied backoff hint as a
    # fourth element; older decoders index only the first three.
    retry_after = getattr(exc, "retry_after_s", None)
    if retry_after is not None:
        return dumps(("err", kind, str(exc), float(retry_after)))
    return dumps(("err", kind, str(exc)))


class ReplicaLink:
    """Asynchronous write forwarding from a primary database to its backup.

    Acknowledged mutations are re-sent as ``yokan.replicate`` RPCs
    (which apply without re-forwarding, so replication can never loop).
    Forwards are non-blocking with a bounded lag window: up to
    ``window`` replicate futures may be in flight before the oldest is
    retired, mirroring the :class:`~repro.hepnos.AsyncEngine`
    submit/pump discipline.  A forward that exhausts its retry budget
    (backup down) is dropped and counted -- the anti-entropy re-sync on
    rejoin repairs the gap.
    """

    def __init__(self, handle, window: int = 8):
        self.handle = handle
        self.window = max(1, int(window))
        self._inflight: "deque" = deque()
        self._lock = threading.Lock()
        self.forwarded = 0
        self.failed = 0
        self.flushes = 0

    def _reap(self, future) -> None:
        try:
            future.wait()
        except ReproError:
            self.failed += 1

    def _submit(self, future) -> None:
        stale = []
        with self._lock:
            self._inflight.append(future)
            while len(self._inflight) > self.window:
                stale.append(self._inflight.popleft())
        for old in stale:
            self._reap(old)

    def forward(self, pairs, erase_keys=()) -> None:
        """Queue one replicate RPC mirroring an acknowledged mutation."""
        self.forwarded += 1
        self._submit(self.handle.replicate_nb(pairs, erase_keys))

    def flush(self) -> int:
        """Retire every in-flight forward; returns how many were waited."""
        with self._lock:
            stale = list(self._inflight)
            self._inflight.clear()
        for future in stale:
            self._reap(future)
        self.flushes += 1
        return len(stale)

    @property
    def lag(self) -> int:
        return len(self._inflight)


class YokanProvider:
    """Server-side provider bound to one engine + provider id."""

    #: default bound on the server-side projection cache (bytes).
    COLUMN_CACHE_BYTES = 64 * 1024 * 1024
    #: default bound on cached, already-packed scan_columns pages.
    PAGE_CACHE_BYTES = 16 * 1024 * 1024

    def __init__(self, engine: Engine, provider_id: int = 0,
                 pool: Optional[Pool] = None,
                 databases: Optional[dict[str, Backend]] = None,
                 column_cache_bytes: Optional[int] = None,
                 broker=None):
        self.engine = engine
        self.provider_id = provider_id
        self.pool = pool if pool is not None else engine.pool
        #: optional :class:`repro.broker.RequestBroker` interposing
        #: admission control + fair-share on tenant-tagged requests.
        self.broker = broker
        self.databases: dict[str, Backend] = dict(databases or {})
        # Server-side projection cache: (db name, key) -> decoded column
        # table (or None for values no column plan covers), so repeated
        # scan_columns passes skip the per-object decode.  Entries are
        # invalidated on any put/erase of their key and evicted LRU
        # under a bytes bound.
        self._column_cache: OrderedDict = OrderedDict()
        self._column_cache_bytes = 0
        self._column_cache_max = (self.COLUMN_CACHE_BYTES
                                  if column_cache_bytes is None
                                  else column_cache_bytes)
        # Whole-page cache over identical scan_columns requests (an
        # analysis re-run projects the same prefixes/fields verbatim):
        # keyed by the full request, validated against a per-database
        # write generation so any put/erase drops every page of that
        # database at the cost of one integer compare.
        self._page_cache: OrderedDict = OrderedDict()
        self._page_cache_bytes = 0
        self._page_gen: dict[str, int] = {}
        self._column_lock = threading.Lock()
        #: db name -> ReplicaLink forwarding acknowledged writes.
        self._replicas: dict[str, ReplicaLink] = {}
        for rpc_name in RPC_NAMES:
            handler = getattr(self, "_rpc_" + rpc_name.split(".", 1)[1])
            wrapped = (self._brokered(rpc_name, handler)
                       if broker is not None
                       else self._traced(rpc_name, handler))
            engine.register(rpc_name, wrapped,
                            provider_id=provider_id, pool=self.pool)

    def _traced(self, rpc_name: str, handler):
        """Wrap a handler in a server-side span and the wire envelope.

        The span parents to the client span whose context arrived in
        the RPC payload header, so one trace covers both sides of the
        wire.  The request envelope is unsealed after the span opens
        (so corrupted requests still produce a provider span) and every
        response -- including error responses -- is sealed on the way
        out.  With no tracer installed the original handler runs
        directly (one attribute read of overhead).
        """
        op = rpc_name.split(".", 1)[1]
        provider_id = self.provider_id
        engine_address = str(self.engine.address)

        def serve(req: RPCRequest) -> bytes:
            try:
                # An unbrokered server still accepts (and ignores) the
                # tenant envelope, so tenant sessions work against any
                # deployment; the magic check is four byte compares.
                _meta, envelope = wire.unwrap_tenant(req.payload)
                req.payload = wire.unseal(envelope)
            except CorruptionError as exc:
                if req.trace_span is not None:
                    req.trace_span.set_tag("error", "CorruptionError")
                return wire.seal(_err(exc))
            return wire.seal(handler(req))

        def traced_handler(req: RPCRequest) -> bytes:
            if not _tracing.enabled:
                return serve(req)
            parent = req.trace_context
            if parent is None:
                parent = _tracing.NO_PARENT
            with _tracing.span(f"yokan.provider.{op}",
                               parent=parent,
                               provider=provider_id,
                               address=engine_address) as sp:
                req.trace_span = sp
                return serve(req)

        return traced_handler

    def _brokered(self, rpc_name: str, handler):
        """Wrap a handler in admission control + fair-share scheduling.

        The wrapper is a *generator* handler: after the broker admits a
        tenant-tagged request, the ULT cooperatively yields until the
        fair-share scheduler grants it a service slot, so queued
        requests occupy no execution stream.  Sheds happen before the
        payload is unsealed and travel back as sealed 429-style errors
        with their ``retry_after_s`` hint.  Untagged (system/legacy)
        traffic bypasses the broker entirely.
        """
        op = rpc_name.split(".", 1)[1]
        provider_id = self.provider_id
        engine_address = str(self.engine.address)

        def serve(req: RPCRequest):
            broker = self.broker
            try:
                meta, envelope = wire.unwrap_tenant(req.payload)
            except CorruptionError as exc:
                if req.trace_span is not None:
                    req.trace_span.set_tag("error", "CorruptionError")
                return wire.seal(_err(exc))
            if broker is None or meta is None or not meta.tenant:
                try:
                    req.payload = wire.unseal(envelope)
                except CorruptionError as exc:
                    if req.trace_span is not None:
                        req.trace_span.set_tag("error", "CorruptionError")
                    return wire.seal(_err(exc))
                return wire.seal(handler(req))
            try:
                admission = broker.admit(meta, op, len(envelope))
            except ServiceBusy as exc:
                if req.trace_span is not None:
                    req.trace_span.set_tag("error", type(exc).__name__)
                    req.trace_span.set_tag("tenant", meta.tenant)
                return wire.seal(_err(exc))
            if req.trace_span is not None:
                req.trace_span.set_tag("tenant", meta.tenant)
            response = None
            queued = 0.0
            try:
                while not admission.ticket.granted:
                    yield ult_yield()
                queued = broker.begin(admission)
                try:
                    req.payload = wire.unseal(envelope)
                    response = handler(req)
                except CorruptionError as exc:
                    if req.trace_span is not None:
                        req.trace_span.set_tag("error", "CorruptionError")
                    response = _err(exc)
                return wire.seal(response)
            finally:
                broker.finish(
                    admission,
                    response_bytes=len(response) if response is not None
                    else 0,
                    queued_s=queued)

        def brokered_handler(req: RPCRequest):
            if not _tracing.enabled:
                return (yield from serve(req))
            parent = req.trace_context
            if parent is None:
                parent = _tracing.NO_PARENT
            with _tracing.span(f"yokan.provider.{op}",
                               parent=parent,
                               provider=provider_id,
                               address=engine_address) as sp:
                req.trace_span = sp
                return (yield from serve(req))

        return brokered_handler

    # -- database management -----------------------------------------------

    def add_database(self, name: str, backend: Backend) -> None:
        if name in self.databases:
            raise YokanError(f"database {name!r} already exists")
        self.databases[name] = backend

    def _db(self, name: str) -> Backend:
        try:
            return self.databases[name]
        except KeyError:
            raise YokanError(f"no database named {name!r}") from None

    def close(self) -> None:
        for backend in self.databases.values():
            backend.close()

    # -- replication ---------------------------------------------------------

    def set_replica(self, db_name: str, handle, window: int = 8) -> None:
        """Forward acknowledged writes of ``db_name`` to ``handle``."""
        if db_name not in self.databases:
            raise YokanError(f"no database named {db_name!r}")
        self._replicas[db_name] = ReplicaLink(handle, window=window)

    def clear_replica(self, db_name: str) -> None:
        self._replicas.pop(db_name, None)

    def replica_links(self) -> dict[str, ReplicaLink]:
        return dict(self._replicas)

    def flush_replication(self) -> int:
        """Drain every replica link; returns futures waited on."""
        return sum(link.flush() for link in self._replicas.values())

    def _forward(self, name: str, pairs=(), erase_keys=()) -> None:
        link = self._replicas.get(name)
        if link is not None:
            link.forward(pairs, erase_keys)

    # -- RPC handlers --------------------------------------------------------
    # Each returns response bytes (the engine auto-responds).

    def _rpc_put(self, req: RPCRequest) -> bytes:
        try:
            name, key, value = loads(req.payload)
            if req.trace_span is not None:
                req.trace_span.set_tag("db", name)
            self._db(name).put(key, value)
            self._column_invalidate(name, key)
            self._forward(name, pairs=[(bytes(key), bytes(value))])
            return _ok()
        except _HANDLED_ERRORS as exc:
            return _err(exc)

    def _rpc_put_multi(self, req: RPCRequest) -> bytes:
        try:
            decoded = loads(req.payload)
            # Newer clients append the CRC of the packed buffer so a
            # corrupted bulk pull is rejected before anything is stored.
            if len(decoded) == 4:
                name, bulk, nbytes, crc = decoded
            else:
                name, bulk, nbytes = decoded
                crc = None
            buffer = bytearray(nbytes)
            local = self.engine.expose(buffer, Bulk.READ_WRITE)
            req.bulk_transfer(BulkOp.PULL, bulk, local, size=nbytes)
            if crc is not None:
                wire.verify_bulk(buffer, crc, "put_multi bulk buffer")
            pairs = loads(bytes(buffer))
            if req.trace_span is not None:
                req.trace_span.set_tag("db", name)
                req.trace_span.set_tag("keys", len(pairs))
            count = self._db(name).put_multi(pairs)
            for key, _value in pairs:
                self._column_invalidate(name, key)
            self._forward(name, pairs=pairs)
            return _ok(count)
        except _HANDLED_ERRORS as exc:
            return _err(exc)

    def _rpc_get(self, req: RPCRequest) -> bytes:
        try:
            decoded = loads(req.payload)
            # Newer clients send a max-inline size; values above it are
            # announced rather than shipped, so the client can fetch
            # them with a bulk transfer.
            if len(decoded) == 3:
                name, key, max_inline = decoded
            else:
                name, key = decoded
                max_inline = None
            if req.trace_span is not None:
                req.trace_span.set_tag("db", name)
            value = self._db(name).get(key)
            if max_inline is not None and len(value) > max_inline:
                return _ok(("large", len(value)))
            return _ok(value)
        except _HANDLED_ERRORS as exc:
            return _err(exc)

    def _rpc_get_multi(self, req: RPCRequest) -> bytes:
        try:
            name, keys, bulk, capacity = loads(req.payload)
            if req.trace_span is not None:
                req.trace_span.set_tag("db", name)
                req.trace_span.set_tag("keys", len(keys))
            values = self._db(name).get_multi(list(keys))
            packed = dumps(values)
            if len(packed) > capacity:
                # Client's landing buffer is too small; tell it how much
                # space the packed response needs so it can retry.
                return dumps(("retry", len(packed)))
            local = self.engine.expose(bytearray(packed), Bulk.READ_ONLY)
            req.bulk_transfer(BulkOp.PUSH, bulk, local, size=len(packed))
            # The client verifies its landing buffer against this CRC
            # before decoding, retrying the RPC on a corrupted push.
            return _ok((len(packed), wire.checksum(packed)))
        except _HANDLED_ERRORS as exc:
            return _err(exc)

    def _rpc_load_prefix_packed(self, req: RPCRequest) -> bytes:
        """Scan every requested prefix and push one packed buffer back.

        Where ``get_multi`` needs the client to already know each key,
        this serves *whole events*: one server-side ordered scan per
        prefix, all pairs length-prefix packed (:mod:`repro.yokan.packed`)
        and moved in a single RDMA push.  The response carries the group
        count, packed size, and CRC for client-side verification.
        """
        try:
            name, prefixes, bulk, capacity = loads(req.payload)
            db = self._db(name)
            groups = [list(db.scan_prefix(bytes(p))) for p in prefixes]
            buffer = packed.pack_groups(groups)
            if req.trace_span is not None:
                req.trace_span.set_tag("db", name)
                req.trace_span.set_tag("prefixes", len(groups))
                req.trace_span.set_tag("bytes", len(buffer))
            if len(buffer) > capacity:
                return dumps(("retry", len(buffer)))
            local = self.engine.expose(bytearray(buffer), Bulk.READ_ONLY)
            req.bulk_transfer(BulkOp.PUSH, bulk, local, size=len(buffer))
            return _ok((len(groups), len(buffer), wire.checksum(buffer)))
        except _HANDLED_ERRORS as exc:
            return _err(exc)

    # -- server-side columnar projection -------------------------------------

    def _column_invalidate(self, name: str, key: bytes) -> None:
        with self._column_lock:
            entry = self._column_cache.pop((name, bytes(key)), None)
            if entry is not None and entry[1] is not None:
                self._column_cache_bytes -= entry[0]
            self._page_gen[name] = self._page_gen.get(name, 0) + 1

    def _column_table(self, name: str, key: bytes, value):
        """The cached column table for ``(name, key)``, decoding on miss.

        Returns ``(count, columns)`` covering every field of the
        element class, or ``None`` when the value is not columnar
        (negative results are cached too, so raw values are not
        re-decoded on every pass).
        """
        cache_key = (name, key)
        with self._column_lock:
            entry = self._column_cache.get(cache_key)
            if entry is not None:
                self._column_cache.move_to_end(cache_key)
                return entry[1]
        table = _columnar.value_to_table(value)
        if table is None:
            nbytes, entry_val = 0, None
        else:
            _tname, count, columns = table
            entry_val = (count, columns)
            nbytes = _columnar.table_nbytes(columns)
        if nbytes > self._column_cache_max:
            return entry_val
        with self._column_lock:
            old = self._column_cache.pop(cache_key, None)
            if old is not None and old[1] is not None:
                self._column_cache_bytes -= old[0]
            self._column_cache[cache_key] = (nbytes, entry_val)
            self._column_cache_bytes += nbytes
            while self._column_cache_bytes > self._column_cache_max:
                _k, (evicted, val) = self._column_cache.popitem(last=False)
                if val is not None:
                    self._column_cache_bytes -= evicted
        return entry_val

    def _rpc_scan_columns(self, req: RPCRequest) -> bytes:
        """Materialize requested columns server-side; push one page back.

        The request names a database, a list of container-key prefixes,
        the product-key suffix (label + type name) and a field list.
        For every prefix whose product decodes to a homogeneous list of
        planned products, only the requested columns travel; anything
        else travels row-wise in place (a per-prefix ``raw`` status) so
        the projection can never change what the client reconstructs.
        """
        try:
            name, blob, lens, suffix, fields, bulk, capacity = \
                loads(req.payload)
            db = self._db(name)
            suffix = bytes(suffix)
            fields = [str(f) for f in fields]
            # The prefix blob doubles as the page-cache token: a hit
            # never re-slices the individual keys.
            page_key = (name, suffix, bytes(blob), bytes(lens),
                        tuple(fields))
            with self._column_lock:
                gen = self._page_gen.get(name, 0)
                entry = self._page_cache.get(page_key)
                if entry is not None and entry[0] == gen:
                    self._page_cache.move_to_end(page_key)
                    nprefixes, buffer, crc = entry[1], entry[2], entry[3]
                else:
                    entry = None
            if entry is None:
                prefixes = packed.unpack_prefixes(blob, lens)
                statuses: list = []
                tables: list = []
                for p in prefixes:
                    key = p + suffix
                    try:
                        value = db.get(key)
                    except KeyNotFound:
                        statuses.append(None)
                        continue
                    table = self._column_table(name, key, value)
                    if table is None:
                        statuses.append(value)
                        continue
                    count, columns = table
                    if any(f not in columns for f in fields):
                        # Unknown field for this class: fall back
                        # row-wise so the client evaluates per object
                        # (and surfaces the same AttributeError the
                        # object path would).
                        statuses.append(value)
                        continue
                    statuses.append(count)
                    tables.append(columns)
                blocks = [_columnar.pack_field_column(tables, f)
                          for f in fields]
                buffer = packed.pack_column_page(statuses, blocks)
                nprefixes = len(statuses)
                crc = wire.checksum(buffer)
                # `gen` was read before the scan: a write racing the
                # build bumps it, so the entry is already stale and a
                # later pass rebuilds from the new bytes.
                nbytes = len(buffer) + len(blob) + len(lens) + 64
                if nbytes <= self.PAGE_CACHE_BYTES:
                    with self._column_lock:
                        old = self._page_cache.pop(page_key, None)
                        if old is not None:
                            self._page_cache_bytes -= old[4]
                        self._page_cache[page_key] = (
                            gen, nprefixes, buffer, crc, nbytes)
                        self._page_cache_bytes += nbytes
                        while self._page_cache_bytes > self.PAGE_CACHE_BYTES:
                            _k, dropped = self._page_cache.popitem(last=False)
                            self._page_cache_bytes -= dropped[4]
            if req.trace_span is not None:
                req.trace_span.set_tag("db", name)
                req.trace_span.set_tag("prefixes", nprefixes)
                req.trace_span.set_tag("fields", len(fields))
                req.trace_span.set_tag("bytes", len(buffer))
                req.trace_span.set_tag("page_cached", entry is not None)
            if len(buffer) > capacity:
                return dumps(("retry", len(buffer)))
            local = self.engine.expose(bytearray(buffer), Bulk.READ_ONLY)
            req.bulk_transfer(BulkOp.PUSH, bulk, local, size=len(buffer))
            return _ok((nprefixes, len(buffer), crc))
        except _HANDLED_ERRORS as exc:
            return _err(exc)

    def _rpc_exists(self, req: RPCRequest) -> bytes:
        try:
            name, key = loads(req.payload)
            return _ok(self._db(name).exists(key))
        except _HANDLED_ERRORS as exc:
            return _err(exc)

    def _rpc_erase(self, req: RPCRequest) -> bytes:
        try:
            name, key = loads(req.payload)
            self._db(name).erase(key)
            self._column_invalidate(name, key)
            self._forward(name, erase_keys=[bytes(key)])
            return _ok()
        except _HANDLED_ERRORS as exc:
            return _err(exc)

    def _rpc_erase_multi(self, req: RPCRequest) -> bytes:
        try:
            name, keys = loads(req.payload)
            keys = list(keys)
            erased = self._db(name).erase_multi(keys)
            for key in keys:
                self._column_invalidate(name, key)
            self._forward(name, erase_keys=[bytes(k) for k in keys])
            return _ok(erased)
        except _HANDLED_ERRORS as exc:
            return _err(exc)

    def _rpc_length(self, req: RPCRequest) -> bytes:
        try:
            name = loads(req.payload)
            return _ok(len(self._db(name)))
        except _HANDLED_ERRORS as exc:
            return _err(exc)

    def _rpc_list_keys(self, req: RPCRequest) -> bytes:
        try:
            name, prefix, start_after, limit = loads(req.payload)
            keys = self._db(name).list_keys(prefix, start_after, limit)
            return _ok(keys)
        except _HANDLED_ERRORS as exc:
            return _err(exc)

    def _rpc_list_keyvals(self, req: RPCRequest) -> bytes:
        try:
            name, prefix, start_after, limit = loads(req.payload)
            db = self._db(name)
            out = []
            for key in db.list_keys(prefix, start_after, limit):
                out.append((key, db.get(key)))
            return _ok(out)
        except _HANDLED_ERRORS as exc:
            return _err(exc)

    def _rpc_count_prefix(self, req: RPCRequest) -> bytes:
        try:
            name, prefix = loads(req.payload)
            return _ok(self._db(name).count_prefix(prefix))
        except _HANDLED_ERRORS as exc:
            return _err(exc)

    def _rpc_replicate(self, req: RPCRequest) -> bytes:
        """Apply mutations forwarded by a primary (or a re-sync).

        Unlike ``put``/``erase`` this never re-forwards, so replica
        chains cannot loop; erases of absent keys are skipped because a
        forward may arrive after a re-sync already applied it.
        """
        try:
            name, pairs, erase_keys = loads(req.payload)
            db = self._db(name)
            pairs = [(bytes(k), bytes(v)) for k, v in pairs]
            erase_keys = [bytes(k) for k in erase_keys]
            stored = db.put_multi(pairs) if pairs else 0
            removed = db.erase_multi(erase_keys) if erase_keys else 0
            for key, _value in pairs:
                self._column_invalidate(name, key)
            for key in erase_keys:
                self._column_invalidate(name, key)
            if req.trace_span is not None:
                req.trace_span.set_tag("db", name)
                req.trace_span.set_tag("keys", len(pairs) + len(erase_keys))
            return _ok((stored, removed))
        except _HANDLED_ERRORS as exc:
            return _err(exc)

    def _rpc_sync(self, req: RPCRequest) -> bytes:
        """Make the provider durable *now*: drain replicas, flush WALs.

        Options: ``{"checkpoint": true}`` additionally snapshots every
        durable backend (truncating its WAL).  The datastore broadcasts
        this on epoch swaps so no replicated write is still in flight
        when a migration commits.
        """
        try:
            options = loads(req.payload) or {}
            drained = self.flush_replication()
            checkpointed = 0
            for backend in self.databases.values():
                if options.get("checkpoint"):
                    do_checkpoint = getattr(backend, "checkpoint", None)
                    if do_checkpoint is not None:
                        do_checkpoint()
                        checkpointed += 1
                        continue
                backend.flush()
            return _ok({"drained": drained, "checkpointed": checkpointed})
        except _HANDLED_ERRORS as exc:
            return _err(exc)

    def _rpc_list_databases(self, req: RPCRequest) -> bytes:
        return _ok(sorted(self.databases))

    def _rpc_create_database(self, req: RPCRequest) -> bytes:
        try:
            name, kind, config = loads(req.payload)
            if name in self.databases:
                raise YokanError(f"database {name!r} already exists")
            self.databases[name] = open_backend(kind, **dict(config))
            return _ok()
        except _HANDLED_ERRORS as exc:
            return _err(exc)
