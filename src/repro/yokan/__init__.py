"""Yokan: a remotely-accessible single-node key-value storage component.

Yokan is the Mochi component HEPnOS is primarily built on (paper
section II-B): it exposes key-value databases over RPC (small items) and
RDMA-style bulk transfers (large items and batches), with ordered
iteration and a choice of persistent or in-memory backends.

Backends provided here:

- ``"map"``      -- in-memory skip-list map (the paper's ``std::map``);
- ``"lsm"``      -- a log-structured merge tree with WAL, SSTables,
  bloom filters and compaction (the paper's RocksDB);
- ``"btree"``    -- a copy-on-write persistent B+tree (the paper's
  BerkeleyDB).
"""

from repro.yokan.backend import Backend, open_backend, BACKEND_KINDS
from repro.yokan.backends.memory import MemoryBackend
from repro.yokan.backends.lsm import LSMBackend
from repro.yokan.backends.btree import BTreeBackend
from repro.yokan.provider import YokanProvider
from repro.yokan.client import YokanClient, DatabaseHandle
from repro.yokan.nonblocking import OperationFuture

__all__ = [
    "Backend",
    "open_backend",
    "BACKEND_KINDS",
    "MemoryBackend",
    "LSMBackend",
    "BTreeBackend",
    "YokanProvider",
    "YokanClient",
    "DatabaseHandle",
    "OperationFuture",
]
