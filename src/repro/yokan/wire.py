"""Checksummed wire envelopes for the Yokan RPC path.

Every Yokan RPC payload and response is *sealed*: a 4-byte big-endian
CRC32 of the body is prepended before the bytes hit the fabric, and
verified (*unsealed*) on receipt.  Bulk buffers are not enveloped --
they are verified out-of-band by carrying their CRC inside the (sealed)
RPC that accompanies the transfer.

A failed check raises :class:`~repro.errors.CorruptionError`, which the
client's :class:`~repro.faults.RetryPolicy` treats as retryable: every
Yokan operation is idempotent, so re-issuing a corrupted request or
re-fetching a corrupted response is always safe.

Requests issued inside a tenant session additionally carry a **tenant
envelope** (:func:`wrap_tenant` / :func:`unwrap_tenant`) *outside* the
sealed payload: a self-checksummed header naming the tenant id, its
priority class, and its quota token.  The request broker reads the
header before unsealing -- admission control must not pay for a full
payload decode on requests it is about to shed -- and anonymous
(system) traffic skips the wrapper entirely, so the unbrokered path is
byte-identical to previous releases.
"""

from __future__ import annotations

import zlib
from typing import NamedTuple, Optional, Tuple

from repro.errors import ConfigError, CorruptionError

_CRC_SIZE = 4

#: leading magic of a tenant-wrapped request envelope
_TENANT_MAGIC = b"\xd7TN1"

#: priority classes on the wire (smaller = served first)
PRIORITY_INTERACTIVE = 0
PRIORITY_BATCH = 1
_PRIORITY_NAMES = {"interactive": PRIORITY_INTERACTIVE,
                   "batch": PRIORITY_BATCH}
_PRIORITY_CODES = {code: name for name, code in _PRIORITY_NAMES.items()}


def priority_code(name) -> int:
    """Map a priority class name (or code) to its wire code."""
    if isinstance(name, int):
        if name not in _PRIORITY_CODES:
            raise ConfigError(f"unknown priority code {name!r}")
        return name
    try:
        return _PRIORITY_NAMES[name]
    except KeyError:
        raise ConfigError(
            f"unknown priority class {name!r} "
            f"(known: {sorted(_PRIORITY_NAMES)})") from None


def priority_name(code: int) -> str:
    return _PRIORITY_CODES.get(code, "batch")


class TenantEnvelope(NamedTuple):
    """Tenant identity carried outside the sealed RPC payload."""

    tenant: str
    priority: int = PRIORITY_BATCH
    token: str = ""


def checksum(data) -> int:
    """CRC32 of ``data`` (any buffer), as an unsigned 32-bit int.

    Zero-copy: ``zlib.crc32`` consumes the buffer protocol directly, so
    passing a ``memoryview`` checksums in place.
    """
    return zlib.crc32(data) & 0xFFFFFFFF


def seal(body: bytes) -> bytes:
    """Prepend the CRC32 envelope to ``body``."""
    if not isinstance(body, bytes):
        body = bytes(body)
    return checksum(body).to_bytes(_CRC_SIZE, "big") + body


def unseal(envelope) -> memoryview:
    """Verify and strip the CRC32 envelope; raise on any damage.

    Returns a ``memoryview`` over the envelope's body -- no copy.  The
    view keeps the envelope's buffer alive, and feeds straight into the
    positional decoder (:func:`repro.serial.loads`).
    """
    view = envelope if isinstance(envelope, memoryview) else memoryview(envelope)
    if len(view) < _CRC_SIZE:
        raise CorruptionError(
            f"short wire envelope ({len(view)}B, need >= {_CRC_SIZE}B)"
        )
    expected = int.from_bytes(view[:_CRC_SIZE], "big")
    body = view[_CRC_SIZE:]
    actual = checksum(body)
    if actual != expected:
        raise CorruptionError(
            f"wire checksum mismatch: expected {expected:#010x}, "
            f"got {actual:#010x} over {len(body)}B"
        )
    return body


def verify_bulk(data, expected_crc: int, what: str = "bulk buffer") -> None:
    """Check a bulk region against the CRC carried in its sealed RPC."""
    actual = checksum(data)
    if actual != expected_crc:
        raise CorruptionError(
            f"{what} checksum mismatch: expected {expected_crc:#010x}, "
            f"got {actual:#010x} over {len(data)}B"
        )


def tenant_prefix(tenant: str, priority: int = PRIORITY_BATCH,
                  token: str = "") -> bytes:
    """The constant wire prefix for one tenant identity.

    A session's identity never changes, so clients compute this once
    and tag every request with a single bytes concatenation instead of
    re-encoding (and re-checksumming) the header per RPC.
    """
    header = (bytes([priority & 0xFF])
              + len(token.encode("utf-8")).to_bytes(2, "big")
              + token.encode("utf-8")
              + tenant.encode("utf-8"))
    return (_TENANT_MAGIC
            + len(header).to_bytes(2, "big")
            + checksum(header).to_bytes(_CRC_SIZE, "big")
            + header)


def wrap_tenant(envelope: bytes, tenant: str,
                priority: int = PRIORITY_BATCH, token: str = "") -> bytes:
    """Prefix a sealed envelope with a self-checksummed tenant header.

    Layout: ``magic(4) | header_len(2, big) | header_crc(4, big) |
    header | sealed envelope``.  The header is
    ``priority(1) | token_len(2, big) | token | tenant`` (both strings
    UTF-8).  The inner envelope keeps its own CRC, so header damage and
    payload damage are detected independently.
    """
    return (tenant_prefix(tenant, priority, token)
            + (envelope if isinstance(envelope, bytes) else bytes(envelope)))


#: validated raw header -> parsed envelope; requests of one tenant all
#: carry byte-identical headers, so the server parses each identity
#: once.  Bounded, and only ever holds *valid* headers, so a cache hit
#: is equivalent to re-validating.
_HEADER_CACHE: dict = {}
_HEADER_CACHE_MAX = 1024


def unwrap_tenant(payload) -> Tuple[Optional[TenantEnvelope], memoryview]:
    """Split a request into its tenant header (if any) and the envelope.

    Payloads that do not start with the tenant magic pass through with
    ``None`` -- the legacy/system path.  A present-but-damaged header
    raises :class:`~repro.errors.CorruptionError` (retryable: the
    client re-sends an intact wrapper).
    """
    view = payload if isinstance(payload, memoryview) else memoryview(payload)
    if len(view) < len(_TENANT_MAGIC) or bytes(view[:4]) != _TENANT_MAGIC:
        return None, view
    if len(view) < 10:
        raise CorruptionError(
            f"short tenant header ({len(view)}B, need >= 10B)")
    hlen = int.from_bytes(view[4:6], "big")
    expected = int.from_bytes(view[6:10], "big")
    if len(view) < 10 + hlen:
        raise CorruptionError(
            f"truncated tenant header ({len(view)}B, header claims {hlen}B)")
    raw = bytes(view[:10 + hlen])
    cached = _HEADER_CACHE.get(raw)
    if cached is not None:
        return cached, view[10 + hlen:]
    header = view[10:10 + hlen]
    actual = checksum(header)
    if actual != expected:
        raise CorruptionError(
            f"tenant header checksum mismatch: expected {expected:#010x}, "
            f"got {actual:#010x} over {hlen}B")
    try:
        priority = header[0]
        token_len = int.from_bytes(header[1:3], "big")
        token = bytes(header[3:3 + token_len]).decode("utf-8")
        tenant = bytes(header[3 + token_len:]).decode("utf-8")
    except (IndexError, UnicodeDecodeError) as exc:
        raise CorruptionError(f"malformed tenant header: {exc}") from None
    meta = TenantEnvelope(tenant, priority, token)
    if len(_HEADER_CACHE) >= _HEADER_CACHE_MAX:
        _HEADER_CACHE.clear()
    _HEADER_CACHE[raw] = meta
    return meta, view[10 + hlen:]


__all__ = ["checksum", "seal", "unseal", "verify_bulk",
           "TenantEnvelope", "tenant_prefix", "wrap_tenant", "unwrap_tenant",
           "priority_code", "priority_name",
           "PRIORITY_INTERACTIVE", "PRIORITY_BATCH"]
