"""Checksummed wire envelopes for the Yokan RPC path.

Every Yokan RPC payload and response is *sealed*: a 4-byte big-endian
CRC32 of the body is prepended before the bytes hit the fabric, and
verified (*unsealed*) on receipt.  Bulk buffers are not enveloped --
they are verified out-of-band by carrying their CRC inside the (sealed)
RPC that accompanies the transfer.

A failed check raises :class:`~repro.errors.CorruptionError`, which the
client's :class:`~repro.faults.RetryPolicy` treats as retryable: every
Yokan operation is idempotent, so re-issuing a corrupted request or
re-fetching a corrupted response is always safe.
"""

from __future__ import annotations

import zlib

from repro.errors import CorruptionError

_CRC_SIZE = 4


def checksum(data) -> int:
    """CRC32 of ``data`` (any buffer), as an unsigned 32-bit int.

    Zero-copy: ``zlib.crc32`` consumes the buffer protocol directly, so
    passing a ``memoryview`` checksums in place.
    """
    return zlib.crc32(data) & 0xFFFFFFFF


def seal(body: bytes) -> bytes:
    """Prepend the CRC32 envelope to ``body``."""
    if not isinstance(body, bytes):
        body = bytes(body)
    return checksum(body).to_bytes(_CRC_SIZE, "big") + body


def unseal(envelope) -> memoryview:
    """Verify and strip the CRC32 envelope; raise on any damage.

    Returns a ``memoryview`` over the envelope's body -- no copy.  The
    view keeps the envelope's buffer alive, and feeds straight into the
    positional decoder (:func:`repro.serial.loads`).
    """
    view = envelope if isinstance(envelope, memoryview) else memoryview(envelope)
    if len(view) < _CRC_SIZE:
        raise CorruptionError(
            f"short wire envelope ({len(view)}B, need >= {_CRC_SIZE}B)"
        )
    expected = int.from_bytes(view[:_CRC_SIZE], "big")
    body = view[_CRC_SIZE:]
    actual = checksum(body)
    if actual != expected:
        raise CorruptionError(
            f"wire checksum mismatch: expected {expected:#010x}, "
            f"got {actual:#010x} over {len(body)}B"
        )
    return body


def verify_bulk(data, expected_crc: int, what: str = "bulk buffer") -> None:
    """Check a bulk region against the CRC carried in its sealed RPC."""
    actual = checksum(data)
    if actual != expected_crc:
        raise CorruptionError(
            f"{what} checksum mismatch: expected {expected_crc:#010x}, "
            f"got {actual:#010x} over {len(data)}B"
        )


__all__ = ["checksum", "seal", "unseal", "verify_bulk"]
