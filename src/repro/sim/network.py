"""A dragonfly interconnect model (the Cray Aries stand-in).

Theta's Aries network is a dragonfly (paper section III-C): nodes attach
to routers, routers form all-to-all *groups*, and groups connect with
global links.  This model captures the pieces that shape data-service
traffic:

- per-link bandwidth contention (links are queued resources);
- minimal routing (node -> router -> [global link] -> router -> node)
  and Valiant-style non-minimal routing through a random intermediate
  group, which trades path length for load spreading;
- per-link traffic accounting, exposing hot links.

Transfers are circuit-style: a message holds each link of its path for
``bytes / link_bandwidth`` in sequence, plus a per-hop latency.  That
is coarser than flit-level simulation but reproduces the contention
behaviour the workflows see (many clients pulling from few servers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import Resource


@dataclass(frozen=True)
class DragonflyConfig:
    """Topology and link parameters."""

    groups: int = 4
    routers_per_group: int = 4
    nodes_per_router: int = 4
    #: node-to-router injection bandwidth [B/s]
    injection_bandwidth: float = 8e9
    #: intra-group (local) link bandwidth [B/s]
    local_bandwidth: float = 5e9
    #: inter-group (global) link bandwidth [B/s]
    global_bandwidth: float = 4e9
    #: per-hop latency [s]
    hop_latency: float = 1e-6

    @property
    def total_nodes(self) -> int:
        return self.groups * self.routers_per_group * self.nodes_per_router

    @property
    def routers(self) -> int:
        return self.groups * self.routers_per_group


class _Link:
    """One directed link: a unit resource with bandwidth."""

    __slots__ = ("name", "bandwidth", "resource", "bytes_carried",
                 "bytes_reserved")

    def __init__(self, sim: Simulator, name: str, bandwidth: float):
        self.name = name
        self.bandwidth = bandwidth
        self.resource = Resource(sim, capacity=1, name=name)
        self.bytes_carried = 0
        #: bytes committed by routing decisions (congestion signal for
        #: adaptive routing; grows at send time, before queues build)
        self.bytes_reserved = 0

    def transfer(self, nbytes: float):
        self.bytes_carried += int(nbytes)
        yield from self.resource.use(nbytes / self.bandwidth)


class DragonflyNetwork:
    """The interconnect: build once, then ``yield from send(...)``."""

    def __init__(self, sim: Simulator, config: DragonflyConfig = DragonflyConfig(),
                 seed: int = 0):
        self.sim = sim
        self.config = config
        self._rng = random.Random(seed)
        self._links: dict[tuple, _Link] = {}
        c = config
        # Injection/ejection links per node (full duplex: two directed).
        for node in range(c.total_nodes):
            self._links[("inj", node)] = _Link(
                sim, f"inj{node}", c.injection_bandwidth)
            self._links[("eje", node)] = _Link(
                sim, f"eje{node}", c.injection_bandwidth)
        # Local links: all-to-all among routers of one group (directed).
        for g in range(c.groups):
            for a in range(c.routers_per_group):
                for b in range(c.routers_per_group):
                    if a != b:
                        self._links[("loc", g, a, b)] = _Link(
                            sim, f"loc{g}.{a}-{b}", c.local_bandwidth)
        # Global links: one (directed) per ordered group pair, attached
        # round-robin to routers.
        for ga in range(c.groups):
            for gb in range(c.groups):
                if ga != gb:
                    self._links[("glb", ga, gb)] = _Link(
                        sim, f"glb{ga}-{gb}", c.global_bandwidth)

    # -- topology helpers ---------------------------------------------------

    def node_router(self, node: int) -> tuple[int, int]:
        """(group, router-in-group) hosting ``node``."""
        c = self.config
        if not 0 <= node < c.total_nodes:
            raise SimulationError(f"node {node} out of range")
        router = node // c.nodes_per_router
        return router // c.routers_per_group, router % c.routers_per_group

    def _gateway_router(self, group: int, dest_group: int) -> int:
        """The router of ``group`` carrying the global link to
        ``dest_group`` (round-robin attachment)."""
        c = self.config
        peer = dest_group if dest_group < group else dest_group - 1
        return peer % c.routers_per_group

    def route(self, src: int, dst: int,
              via_group: Optional[int] = None) -> list[tuple]:
        """The ordered link keys a message traverses."""
        if src == dst:
            return []
        sg, sr = self.node_router(src)
        dg, dr = self.node_router(dst)
        path: list[tuple] = [("inj", src)]
        if sg == dg:
            if sr != dr:
                path.append(("loc", sg, sr, dr))
        else:
            groups = [sg]
            if via_group is not None and via_group not in (sg, dg):
                groups.append(via_group)
            groups.append(dg)
            current_router = sr
            for here, there in zip(groups, groups[1:]):
                gateway = self._gateway_router(here, there)
                if current_router != gateway:
                    path.append(("loc", here, current_router, gateway))
                path.append(("glb", here, there))
                current_router = self._gateway_router(there, here)
            if current_router != dr:
                path.append(("loc", dg, current_router, dr))
        path.append(("eje", dst))
        return path

    # -- transfers ---------------------------------------------------------

    def send(self, src: int, dst: int, nbytes: float,
             adaptive: bool = False):
        """Process helper: move ``nbytes`` from ``src`` to ``dst``.

        With ``adaptive=True``, inter-group messages take a Valiant
        detour through a random intermediate group when the minimal
        global link is busier than the detour's first global link.
        """
        via = None
        sg, _ = self.node_router(src)
        dg, _ = self.node_router(dst)
        if adaptive and sg != dg and self.config.groups > 2:
            # UGAL-style choice on *reserved* load: committed bytes are
            # a congestion signal available before queues even build.
            minimal = self._links[("glb", sg, dg)]
            candidates = [g for g in range(self.config.groups)
                          if g not in (sg, dg)]
            alt_group = self._rng.choice(candidates)
            detour_load = max(
                self._links[("glb", sg, alt_group)].bytes_reserved,
                self._links[("glb", alt_group, dg)].bytes_reserved,
            )
            # The detour uses two global hops; prefer it only when the
            # minimal link carries at least twice the detour's load.
            if minimal.bytes_reserved >= 2 * (detour_load + nbytes):
                via = alt_group
        path = self.route(src, dst, via_group=via)
        for key in path:
            if key[0] == "glb":
                self._links[key].bytes_reserved += int(nbytes)
        for key in path:
            yield Timeout(self.config.hop_latency)
            yield from self._links[key].transfer(nbytes)

    # -- accounting ---------------------------------------------------------

    def link_loads(self) -> dict[str, int]:
        """Bytes carried per link (nonzero only)."""
        return {
            link.name: link.bytes_carried
            for link in self._links.values()
            if link.bytes_carried
        }

    def hottest_link(self) -> tuple[str, int]:
        link = max(self._links.values(), key=lambda l: l.bytes_carried)
        return link.name, link.bytes_carried

    def global_link_utilization(self, elapsed: float) -> dict[str, float]:
        return {
            link.name: link.resource.utilization(elapsed)
            for key, link in self._links.items()
            if key[0] == "glb" and link.bytes_carried
        }
