"""The simulation kernel: virtual time, events, generator processes.

A process is a generator that yields *waitables*:

- ``Timeout(dt)`` -- resume after ``dt`` simulated seconds;
- ``Event`` -- resume when someone calls :meth:`Event.succeed`
  (the value passed there is sent into the generator);
- another ``Process`` -- resume when it finishes (its return value is
  delivered).

The kernel is deterministic: ties in time break by schedule order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError


class Event:
    """A one-shot simulation event processes can wait on."""

    __slots__ = ("sim", "triggered", "value", "_waiters")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    def succeed(self, value: Any = None) -> None:
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(value)

    def _add_waiter(self, callback: Callable[[Any], None]) -> None:
        if self.triggered:
            callback(self.value)
        else:
            self._waiters.append(callback)


class Timeout:
    """Waitable: resume after a delay."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay


class Process:
    """A running generator, driving itself through the kernel."""

    __slots__ = ("sim", "name", "_gen", "finished", "result", "_done_event")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "proc"):
        self.sim = sim
        self.name = name
        self._gen = gen
        self.finished = False
        self.result: Any = None
        self._done_event = Event(sim)
        sim._schedule(0.0, lambda: self._step(None))

    def _step(self, send_value: Any) -> None:
        try:
            waitable = self._gen.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self._done_event.succeed(stop.value)
            return
        if isinstance(waitable, Timeout):
            self.sim._schedule(waitable.delay, lambda: self._step(None))
        elif isinstance(waitable, Event):
            waitable._add_waiter(lambda value: self.sim._schedule(
                0.0, lambda: self._step(value)))
        elif isinstance(waitable, Process):
            waitable._done_event._add_waiter(lambda value: self.sim._schedule(
                0.0, lambda: self._step(value)))
        else:
            raise SimulationError(
                f"process {self.name} yielded a non-waitable: {waitable!r}"
            )

    @property
    def done_event(self) -> Event:
        return self._done_event


class Simulator:
    """The event loop and virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._steps = 0

    def _schedule(self, delay: float, callback: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), callback))

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: Generator, name: str = "proc") -> Process:
        """Register a generator as a simulation process."""
        return Process(self, gen, name)

    def run(self, until: Optional[float] = None,
            max_steps: int = 200_000_000) -> float:
        """Run until the event heap drains (or ``until``); returns now."""
        while self._heap:
            time, _seq, callback = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            callback()
            self._steps += 1
            if self._steps > max_steps:
                raise SimulationError("simulation exceeded max_steps")
        return self.now
