"""A discrete-event simulator of the HPC platform (Theta stand-in).

The paper's scaling measurements ran on up to 256 Cray XC40 nodes; a
single Python process cannot reproduce those wall-clock numbers, so the
*shape* experiments (Figures 2 and 3) run on this simulator instead.

:mod:`repro.sim.engine` is a small SimPy-style kernel: processes are
generators yielding timeouts, events, and resource requests.
:mod:`repro.sim.resources` provides queued resources and stores.
:mod:`repro.sim.platform` models the cluster pieces the workflows
touch: nodes with cores, NICs with injection limits, a parallel file
system with metadata service, and per-node SSD/memory storage.
"""

from repro.sim.engine import Simulator, Timeout, Event, Process
from repro.sim.resources import Resource, Store
from repro.sim.platform import (
    PlatformConfig,
    THETA,
    NodeModel,
    ParallelFileSystem,
    StorageDevice,
)

__all__ = [
    "Simulator",
    "Timeout",
    "Event",
    "Process",
    "Resource",
    "Store",
    "PlatformConfig",
    "THETA",
    "NodeModel",
    "ParallelFileSystem",
    "StorageDevice",
]
