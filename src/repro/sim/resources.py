"""Queued resources and stores for simulation processes."""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator, Timeout


class Resource:
    """A capacity-limited resource with a FIFO wait queue.

    Usage inside a process::

        yield resource.request()
        try:
            yield Timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "res"):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: deque[Event] = deque()
        # accounting
        self.total_requests = 0
        self.total_wait = 0.0
        self.busy_time = 0.0
        self._request_times: deque[float] = deque()
        self._last_change = 0.0

    def _accumulate(self) -> None:
        self.busy_time += self.in_use * (self.sim.now - self._last_change)
        self._last_change = self.sim.now

    def request(self) -> Event:
        """Waitable granting one unit of capacity."""
        self.total_requests += 1
        event = Event(self.sim)
        self._accumulate()
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed(self.sim.now)
        else:
            self._queue.append(event)
            self._request_times.append(self.sim.now)
        return event

    def release(self) -> None:
        self._accumulate()
        if self._queue:
            waiter = self._queue.popleft()
            requested_at = self._request_times.popleft()
            self.total_wait += self.sim.now - requested_at
            waiter.succeed(self.sim.now)  # capacity passes directly on
        else:
            if self.in_use <= 0:
                raise SimulationError(f"release of idle resource {self.name}")
            self.in_use -= 1

    def use(self, service_time: float):
        """Process helper: acquire, hold for ``service_time``, release."""
        yield self.request()
        try:
            yield Timeout(service_time)
        finally:
            self.release()

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        self._accumulate()
        return self.busy_time / (elapsed * self.capacity)


class Store:
    """An unbounded FIFO of items with blocking get."""

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.total_put = 0

    def put(self, item: Any) -> None:
        self.total_put += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Waitable resolving to the next item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)
