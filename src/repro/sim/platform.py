"""Cluster component models calibrated to public Theta characteristics.

These are deliberately coarse queueing models: each device is a
capacity-limited resource whose service time is ``fixed + bytes/bandwidth``.
Absolute constants come from public documentation (KNL 7230 nodes with
64 cores, Aries ~8 GB/s injection per node, a Lustre file system with
metadata-limited small-file behavior, node-local SSDs); DESIGN.md lists
them and the calibration rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import Resource


@dataclass(frozen=True)
class PlatformConfig:
    """Constants describing one machine."""

    cores_per_node: int = 64
    #: per-node NIC injection bandwidth [B/s] (Aries ~8 GB/s usable)
    nic_bandwidth: float = 8e9
    #: one-way small-message latency [s]
    network_latency: float = 2e-6
    #: per-RPC software overhead (Mercury/Margo handling) [s]
    rpc_overhead: float = 15e-6
    #: parallel file system aggregate read bandwidth [B/s]
    pfs_bandwidth: float = 40e9
    #: concurrent PFS streams before bandwidth saturates
    pfs_streams: int = 256
    #: metadata operation service time (open/stat on Lustre) [s]
    pfs_metadata_time: float = 3e-3
    #: metadata servers (serialize metadata ops)
    pfs_metadata_servers: int = 4
    #: node-local SSD read bandwidth [B/s] (NVMe class)
    ssd_bandwidth: float = 4e9
    #: SSD per-request latency [s]
    ssd_latency: float = 100e-6
    #: memory bandwidth for server-side copies [B/s]
    memory_bandwidth: float = 60e9


#: The evaluation machine.
THETA = PlatformConfig()


class StorageDevice:
    """A shared storage device: latency + bandwidth queue."""

    def __init__(self, sim: Simulator, bandwidth: float, latency: float,
                 streams: int = 1, name: str = "dev"):
        self.sim = sim
        self.bandwidth = bandwidth
        self.latency = latency
        self.resource = Resource(sim, capacity=streams, name=name)

    def read(self, nbytes: float):
        """Process helper: one read of ``nbytes``."""
        service = self.latency + nbytes / self.bandwidth
        yield from self.resource.use(service)

    write = read  # symmetric for our purposes


class ParallelFileSystem:
    """Lustre-like: a metadata service plus striped data bandwidth."""

    def __init__(self, sim: Simulator, config: PlatformConfig):
        self.sim = sim
        self.config = config
        self.metadata = Resource(sim, capacity=config.pfs_metadata_servers,
                                 name="pfs-md")
        # Data path: the aggregate bandwidth is shared by up to
        # pfs_streams concurrent streams, each getting an equal share.
        self.data = Resource(sim, capacity=config.pfs_streams, name="pfs-data")
        self._stream_bw = config.pfs_bandwidth / config.pfs_streams

    def open_file(self):
        """Metadata op (open/stat)."""
        yield from self.metadata.use(self.config.pfs_metadata_time)

    def read_file(self, nbytes: float):
        """Open + data transfer at one stream's share."""
        yield from self.open_file()
        yield from self.data.use(nbytes / self._stream_bw)


class NodeModel:
    """One compute node: cores, a NIC, and optional local storage."""

    def __init__(self, sim: Simulator, config: PlatformConfig,
                 name: str = "node", with_ssd: bool = False):
        self.sim = sim
        self.config = config
        self.name = name
        self.cores = Resource(sim, capacity=config.cores_per_node,
                              name=f"{name}-cores")
        self.nic = StorageDevice(sim, config.nic_bandwidth,
                                 config.network_latency, streams=1,
                                 name=f"{name}-nic")
        self.ssd = (
            StorageDevice(sim, config.ssd_bandwidth, config.ssd_latency,
                          streams=1, name=f"{name}-ssd")
            if with_ssd else None
        )

    def compute(self, seconds: float):
        """Occupy one core for ``seconds``."""
        yield from self.cores.use(seconds)

    def send(self, nbytes: float):
        """Inject ``nbytes`` into the fabric through this node's NIC."""
        yield from self.nic.read(nbytes)
        yield Timeout(self.config.network_latency)
