"""The Margo instance: one engine plus its Argobots resource layout."""

from __future__ import annotations

from typing import Optional, Union

from repro.argobots import Pool
from repro.errors import ConfigError
from repro.mercury import Address, Engine, Fabric
from repro.monitor import tracing as _tracing


class MargoInstance:
    """An engine with named pools and execution streams.

    ``argobots_config`` follows the Bedrock layout::

        {
          "pools":    [{"name": "p0", "kind": "fifo"}, ...],
          "xstreams": [{"name": "es0", "pools": ["p0", ...]}, ...],
        }

    If omitted, one pool and one xstream are created (Margo's default
    single-threaded mode).  The paper's configuration uses 16 rpc
    xstreams per HEPnOS process, each serving one provider's pool.
    """

    def __init__(self, fabric: Fabric, address: Union[str, Address],
                 argobots_config: Optional[dict] = None, tag: str = ""):
        with _tracing.span("margo.init", address=str(address)) as init_span:
            self._init(fabric, address, argobots_config, tag, init_span)

    def _init(self, fabric: Fabric, address: Union[str, Address],
              argobots_config: Optional[dict], tag: str, init_span) -> None:
        self.fabric = fabric
        addr = Address.parse(address) if isinstance(address, str) else address
        # The tag disambiguates runtime resource names when an instance
        # is rebuilt at the same address (provider restart): pools and
        # xstreams are registered once per runtime and never reused.
        self._prefix = f"{addr}#{tag}" if tag else str(addr)
        runtime = fabric.runtime
        self.pools: dict[str, Pool] = {}

        config = argobots_config or {}
        pool_specs = config.get("pools", [{"name": "__primary__", "kind": "fifo"}])
        for spec in pool_specs:
            name = spec.get("name")
            if not name:
                raise ConfigError("every pool needs a name")
            if name in self.pools:
                raise ConfigError(f"duplicate pool name {name!r}")
            kind = spec.get("kind", "fifo")
            try:
                self.pools[name] = runtime.create_pool(f"{self._prefix}:{name}", kind)
            except ValueError as exc:
                raise ConfigError(str(exc)) from None

        xstream_specs = config.get(
            "xstreams",
            [{"name": "__primary__", "pools": [next(iter(self.pools))]}],
        )
        self.xstreams = {}
        for spec in xstream_specs:
            name = spec.get("name")
            if not name:
                raise ConfigError("every xstream needs a name")
            pool_names = spec.get("pools", [])
            if not pool_names:
                raise ConfigError(f"xstream {name!r} has no pools")
            try:
                pools = [self.pools[p] for p in pool_names]
            except KeyError as exc:
                raise ConfigError(
                    f"xstream {name!r} references unknown pool {exc.args[0]!r}"
                ) from None
            self.xstreams[name] = runtime.create_xstream(
                f"{self._prefix}:{name}", pools
            )

        first_pool = next(iter(self.pools.values()))
        rpc_pool_name = config.get("rpc_pool")
        if rpc_pool_name is not None and rpc_pool_name not in self.pools:
            raise ConfigError(f"rpc_pool {rpc_pool_name!r} is not a defined pool")
        rpc_pool = self.pools[rpc_pool_name] if rpc_pool_name else first_pool
        self.engine = Engine(fabric, addr, pool=rpc_pool)
        init_span.set_tag("pools", len(self.pools))
        init_span.set_tag("xstreams", len(self.xstreams))

    @property
    def address(self) -> Address:
        return self.engine.address

    def pool(self, name: str) -> Pool:
        try:
            return self.pools[name]
        except KeyError:
            raise ConfigError(f"no pool named {name!r}") from None

    def finalize(self) -> None:
        self.engine.finalize()
