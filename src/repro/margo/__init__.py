"""Margo: binds Mercury RPC to Argobots resources.

In Mochi, Margo wraps Mercury's callback-driven API into a blocking
model where each RPC handler runs as an Argobots ULT in a configurable
pool.  Here the Mercury reproduction is ULT-native already, so Margo's
remaining job is resource wiring: creating the pools and execution
streams described by a configuration and handing them to providers.
"""

from repro.margo.instance import MargoInstance

__all__ = ["MargoInstance"]
