"""Exception hierarchy shared across the repro packages.

Every layer raises a subclass of :class:`ReproError` so that callers can
catch failures from the whole stack with a single ``except`` clause while
still being able to discriminate the failing layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent service configuration was supplied."""


class SerializationError(ReproError):
    """A value could not be serialized or deserialized."""


class RPCError(ReproError):
    """A remote procedure call failed."""


class NoSuchRPCError(RPCError):
    """The target engine has no RPC registered under the requested name."""


class AddressError(RPCError):
    """An address could not be parsed or resolved."""


class NetworkFailure(RPCError):
    """The (simulated) fabric dropped the request.

    The paper reports run crashes caused by oversaturation of the Aries
    NIC injection bandwidth; the simulated fabric raises this error under
    the same condition when failure injection is enabled.
    """


class RPCTimeout(RPCError):
    """An RPC did not complete within its deadline.

    Raised by :meth:`repro.mercury.Fabric.wait` when a per-call timeout
    elapses, or when the inline scheduler stays idle past the fabric's
    idle budget while a response is outstanding.
    """


class OperationCancelled(RPCError):
    """A non-blocking operation was cancelled before it was dispatched.

    Raised when waiting on an
    :class:`~repro.yokan.OperationFuture` whose :meth:`cancel` succeeded
    while the operation was still queued behind an
    :class:`~repro.hepnos.AsyncEngine`'s in-flight window.
    """


class YokanError(ReproError):
    """A key-value database operation failed."""


class KeyNotFound(YokanError):
    """The requested key does not exist in the database."""


class DatabaseClosed(YokanError):
    """The database was used after being closed."""


class CorruptionError(YokanError):
    """Data failed checksum or format validation.

    Raised both for on-disk damage and for wire-level damage caught by
    the Yokan RPC envelope / bulk checksums (:mod:`repro.yokan.wire`).
    Wire corruption is retryable: every Yokan operation is idempotent.
    """


class HEPnOSError(ReproError):
    """An error in the HEPnOS data-model layer."""


class ContainerNotFound(HEPnOSError):
    """A dataset, run, subrun, or event does not exist."""


class ProductNotFound(HEPnOSError):
    """A product (label, type) pair does not exist in its container."""


class ShardMapStale(HEPnOSError):
    """The client's shard map advanced while an operation was in flight.

    Raised when a lookup misses *and* the datastore notices its
    placement epoch changed mid-operation (a live rescale began or
    committed).  Retryable: re-running the operation re-resolves every
    key under the new shard map, and all involved operations are
    idempotent.
    """


class ServiceBusy(ReproError):
    """The service shed this request under load (429-style).

    Raised by the request broker when a tenant exceeds its token-bucket
    rate limit or the fair-share queues are full.  Retryable: the
    request was rejected *before* any state changed.  ``retry_after_s``
    is the server-supplied backoff hint; :class:`~repro.faults.RetryPolicy`
    honors it instead of its own exponential schedule when present.
    """

    def __init__(self, message: str = "service busy",
                 retry_after_s: "float | None" = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class QuotaExceeded(ServiceBusy):
    """A tenant hit its quota (bytes in flight, queue depth, or token).

    A :class:`ServiceBusy` specialization: the broker refused the
    request because admitting it would put the tenant over one of its
    configured quotas.  Retryable -- earlier requests completing free
    the quota -- with the same ``retry_after_s`` hint semantics.
    """


class MPIError(ReproError):
    """An error in the in-process MPI substrate."""


class HDF5LiteError(ReproError):
    """An error reading or writing an hdf5lite file."""


class SimulationError(ReproError):
    """An error in the discrete-event simulation engine."""


#: The complete public hierarchy.  Every exception the repro packages
#: raise -- across ``yokan``, ``mercury``, ``faults``, ``hepnos``, the
#: simulator, and the tools -- is importable from here and derives from
#: :class:`ReproError`.
__all__ = [
    "ReproError",
    "ConfigError",
    "SerializationError",
    "RPCError",
    "NoSuchRPCError",
    "AddressError",
    "NetworkFailure",
    "RPCTimeout",
    "OperationCancelled",
    "YokanError",
    "KeyNotFound",
    "DatabaseClosed",
    "CorruptionError",
    "HEPnOSError",
    "ContainerNotFound",
    "ProductNotFound",
    "ShardMapStale",
    "ServiceBusy",
    "QuotaExceeded",
    "MPIError",
    "HDF5LiteError",
    "SimulationError",
]
