"""A cooperative user-level-thread (ULT) runtime modeled on Argobots.

Argobots provides lightweight threads (ULTs) scheduled over execution
streams (xstreams), with work queued in pools.  Mochi maps each provider
to a pool so that the CPU resources executing an RPC are decoupled from
the data resources the RPC acts on (paper section II-B).

This reproduction implements ULTs as Python generators: a ULT body may
``yield`` scheduling directives (:func:`ult_yield`, ``eventual.wait()``,
``mutex.lock()`` ...) to cooperate.  Execution streams can be driven

- *inline*: a :class:`Runtime` steps all xstreams deterministically from
  the caller's thread (the default; fully reproducible), or
- *threaded*: each xstream runs its scheduler loop on an OS thread.
"""

from repro.argobots.runtime import (
    Runtime,
    ExecutionStream,
    Pool,
    ULT,
    ult_yield,
    current_ult,
)
from repro.argobots.sync import (
    Eventual,
    Mutex,
    Barrier,
    ult_join,
    unwrap_wait_result,
)

__all__ = [
    "Runtime",
    "ExecutionStream",
    "Pool",
    "ULT",
    "ult_yield",
    "current_ult",
    "Eventual",
    "Mutex",
    "Barrier",
    "ult_join",
    "unwrap_wait_result",
]
