"""ULTs, pools, execution streams, and the runtime that drives them."""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from typing import Callable, Iterable, Optional

from repro.errors import ReproError


class _Directive:
    """Base class for objects a ULT may yield to its scheduler."""

    __slots__ = ()


class _YieldDirective(_Directive):
    """Reschedule the ULT at the back of its pool."""

    __slots__ = ()


_ULT_YIELD = _YieldDirective()


def ult_yield() -> _Directive:
    """Directive that cooperatively yields the processor.

    Usage inside a ULT body::

        def body():
            while work_remains():
                do_a_chunk()
                yield ult_yield()
    """
    return _ULT_YIELD


class WaitDirective(_Directive):
    """Suspend the ULT until a waitable signals it.

    Created by synchronization objects (:class:`Eventual`,
    :class:`Mutex`, ...).  ``register`` is called with the suspended ULT
    and must arrange for ``ult.resume(value)`` to be called later.  If
    ``ready()`` is already true the scheduler continues the ULT
    immediately with ``value()``.
    """

    __slots__ = ("_ready", "_value", "_register")

    def __init__(
        self,
        ready: Callable[[], bool],
        value: Callable[[], object],
        register: Callable[["ULT"], None],
    ):
        self._ready = ready
        self._value = value
        self._register = register


_ult_context = threading.local()


def current_ult() -> Optional["ULT"]:
    """The ULT currently executing on this thread, if any."""
    return getattr(_ult_context, "ult", None)


class ULT:
    """A user-level thread.

    ``func`` may be a plain callable (runs to completion in one step) or
    a generator function (may yield directives).  The result (return
    value / ``StopIteration`` value) and any raised exception are
    captured and exposed through :meth:`result`.
    """

    _ids = itertools.count()

    def __init__(self, func: Callable, args: tuple = (), kwargs: Optional[dict] = None,
                 name: Optional[str] = None, priority: int = 0):
        self.ult_id = next(ULT._ids)
        self.name = name or f"ult-{self.ult_id}"
        self.priority = priority
        self._func = func
        self._args = args
        self._kwargs = kwargs or {}
        self._gen = None
        self._started = False
        self._done = False
        self._value = None
        self._exception: Optional[BaseException] = None
        self._send_value = None
        self.pool: Optional["Pool"] = None
        self._done_callbacks: list[Callable[["ULT"], None]] = []

    # -- inspection --------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._done

    def result(self):
        """The ULT's return value; re-raises any exception it raised."""
        if not self._done:
            raise ReproError(f"ULT {self.name} has not completed")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def add_done_callback(self, callback: Callable[["ULT"], None]) -> None:
        if self._done:
            callback(self)
        else:
            self._done_callbacks.append(callback)

    # -- scheduling --------------------------------------------------------

    def resume(self, value=None) -> None:
        """Make the ULT runnable again, delivering ``value`` to its yield."""
        self._send_value = value
        if self.pool is None:
            raise ReproError(f"ULT {self.name} has no pool to resume into")
        self.pool.push(self)

    def _finish(self, value=None, exc: Optional[BaseException] = None) -> None:
        self._done = True
        self._value = value
        self._exception = exc
        callbacks, self._done_callbacks = self._done_callbacks, []
        for callback in callbacks:
            callback(self)

    def step(self) -> None:
        """Run the ULT until it yields, returns, or raises.

        Called only by schedulers.  A yielded :class:`WaitDirective`
        either continues immediately (already ready) or parks the ULT;
        a yield directive re-queues it.
        """
        prev = getattr(_ult_context, "ult", None)
        _ult_context.ult = self
        try:
            while True:
                try:
                    if not self._started:
                        self._started = True
                        result = self._func(*self._args, **self._kwargs)
                        if hasattr(result, "send"):  # generator body
                            self._gen = result
                            directive = self._gen.send(None)
                        else:  # plain callable: ran to completion
                            self._finish(result)
                            return
                    else:
                        if self._gen is None:
                            raise ReproError("resumed a completed non-generator ULT")
                        send_value, self._send_value = self._send_value, None
                        directive = self._gen.send(send_value)
                except StopIteration as stop:
                    self._finish(stop.value)
                    return
                except BaseException as exc:  # noqa: BLE001 - captured for result()
                    self._finish(None, exc)
                    return

                if isinstance(directive, _YieldDirective):
                    self.pool.push(self)
                    return
                if isinstance(directive, WaitDirective):
                    if directive._ready():
                        self._send_value = directive._value()
                        continue
                    directive._register(self)
                    return
                # A bad yield is the ULT's bug, not the scheduler's: record
                # it as the ULT's failure so result() reports it.
                self._finish(
                    None,
                    ReproError(
                        f"ULT {self.name} yielded a non-directive: {directive!r}"
                    ),
                )
                return
        finally:
            _ult_context.ult = prev


class Pool:
    """A queue of runnable ULTs.

    ``kind`` is ``"fifo"`` (default) or ``"prio"`` (smaller ``priority``
    first, FIFO among equals).  Pools are thread-safe so that threaded
    xstreams and external producers can share them.
    """

    def __init__(self, name: str = "pool", kind: str = "fifo"):
        if kind not in ("fifo", "prio"):
            raise ValueError(f"unknown pool kind {kind!r}")
        self.name = name
        self.kind = kind
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._fifo: deque[ULT] = deque()
        self._heap: list[tuple[int, int, ULT]] = []
        self._seq = itertools.count()
        self._pushed_total = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._fifo) + len(self._heap)

    def __bool__(self) -> bool:
        # A pool object is always truthy, even when empty -- falling back
        # to __len__ here turns "pool or default" into a silent bug.
        return True

    @property
    def pushed_total(self) -> int:
        """Total number of pushes ever (scheduling diagnostics)."""
        return self._pushed_total

    def push(self, ult: ULT) -> None:
        ult.pool = self
        with self._not_empty:
            if self.kind == "fifo":
                self._fifo.append(ult)
            else:
                heapq.heappush(self._heap, (ult.priority, next(self._seq), ult))
            self._pushed_total += 1
            self._not_empty.notify()

    def pop(self) -> Optional[ULT]:
        with self._lock:
            return self._pop_locked()

    def _pop_locked(self) -> Optional[ULT]:
        if self.kind == "fifo":
            return self._fifo.popleft() if self._fifo else None
        if self._heap:
            return heapq.heappop(self._heap)[2]
        return None

    def pop_wait(self, timeout: Optional[float] = None) -> Optional[ULT]:
        """Blocking pop used by threaded xstreams."""
        with self._not_empty:
            if self.kind == "fifo":
                while not self._fifo:
                    if not self._not_empty.wait(timeout):
                        return None
            else:
                while not self._heap:
                    if not self._not_empty.wait(timeout):
                        return None
            return self._pop_locked()


class ExecutionStream:
    """An execution stream draining one or more pools.

    In inline mode, :meth:`step` is invoked by the owning
    :class:`Runtime`; in threaded mode :meth:`start` spawns an OS thread
    running the same scheduler loop.
    """

    def __init__(self, name: str, pools: Iterable[Pool]):
        self.name = name
        self.pools = list(pools)
        if not self.pools:
            raise ValueError("an execution stream needs at least one pool")
        self._rr = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.steps_executed = 0

    def step(self) -> bool:
        """Pop and run one ULT; return whether any work was found."""
        for offset in range(len(self.pools)):
            pool = self.pools[(self._rr + offset) % len(self.pools)]
            ult = pool.pop()
            if ult is not None:
                self._rr = (self._rr + offset + 1) % len(self.pools)
                self.steps_executed += 1
                ult.step()
                return True
        return False

    # -- threaded mode -------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise ReproError(f"xstream {self.name} already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, name=self.name, daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            if not self.step():
                # Block briefly on the first pool; re-check stop regularly.
                ult = self.pools[0].pop_wait(timeout=0.01)
                if ult is not None:
                    self.steps_executed += 1
                    ult.step()

    def join(self) -> None:
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None


class Runtime:
    """Owns pools and xstreams; in inline mode it is also the scheduler.

    The inline scheduler steps xstreams round-robin, giving a fully
    deterministic interleaving -- the property that makes the RPC stack
    and the HEPnOS tests reproducible.
    """

    def __init__(self, threaded: bool = False):
        self.threaded = threaded
        self.pools: dict[str, Pool] = {}
        self.xstreams: dict[str, ExecutionStream] = {}
        self._started = False
        # Snapshot used by progress_once: a ULT step may create new
        # xstreams (e.g. a fault-schedule action restarting a provider),
        # which must not mutate the dict mid-iteration.
        self._xstream_cache: tuple[ExecutionStream, ...] = ()

    # -- construction --------------------------------------------------------

    def create_pool(self, name: str, kind: str = "fifo") -> Pool:
        if name in self.pools:
            raise ReproError(f"pool {name!r} already exists")
        pool = Pool(name, kind)
        self.pools[name] = pool
        return pool

    def create_xstream(self, name: str, pools: Iterable[Pool]) -> ExecutionStream:
        if name in self.xstreams:
            raise ReproError(f"xstream {name!r} already exists")
        xstream = ExecutionStream(name, pools)
        self.xstreams[name] = xstream
        self._xstream_cache = tuple(self.xstreams.values())
        if self.threaded and self._started:
            xstream.start()
        return xstream

    def default_pool(self) -> Pool:
        if "__primary__" not in self.pools:
            pool = self.create_pool("__primary__")
            self.create_xstream("__primary__", [pool])
        return self.pools["__primary__"]

    # -- spawning --------------------------------------------------------

    def spawn(self, func: Callable, *args, pool: Optional[Pool] = None,
              name: Optional[str] = None, priority: int = 0, **kwargs) -> ULT:
        """Create a ULT running ``func`` and queue it."""
        ult = ULT(func, args, kwargs, name=name, priority=priority)
        target = pool if pool is not None else self.default_pool()
        target.push(ult)
        return ult

    # -- driving --------------------------------------------------------

    def start(self) -> None:
        """Start OS threads for all xstreams (threaded mode only)."""
        if not self.threaded:
            return
        self._started = True
        for xstream in self.xstreams.values():
            xstream.start()

    def shutdown(self) -> None:
        for xstream in self.xstreams.values():
            xstream.join()
        self._started = False

    def progress_once(self) -> bool:
        """Inline mode: run one ULT step somewhere. Returns False if idle."""
        for xstream in self._xstream_cache:
            if xstream.step():
                return True
        return False

    def run_until(self, predicate: Callable[[], bool], max_steps: int = 10_000_000) -> None:
        """Drive the inline scheduler until ``predicate()`` holds.

        Raises if the runtime goes idle (deadlock) or ``max_steps`` is
        exceeded before the predicate becomes true.
        """
        steps = 0
        while not predicate():
            if self.threaded:
                # Threads make progress on their own; just spin-wait politely.
                threading.Event().wait(0.0005)
                steps += 1
            else:
                if not self.progress_once():
                    raise ReproError(
                        "runtime idle but condition not met (deadlock?)"
                    )
                steps += 1
            if steps > max_steps:
                raise ReproError("run_until exceeded max_steps")

    def run_until_idle(self, max_steps: int = 10_000_000) -> int:
        """Drive the inline scheduler until every pool is empty."""
        steps = 0
        while self.progress_once():
            steps += 1
            if steps > max_steps:
                raise ReproError("run_until_idle exceeded max_steps")
        return steps

    def join(self, ult: ULT):
        """Wait for ``ult`` to finish and return its result."""
        self.run_until(lambda: ult.done)
        return ult.result()
