"""Synchronization primitives for ULTs: Eventual, Mutex, Barrier.

Each primitive produces :class:`~repro.argobots.runtime.WaitDirective`
objects: a ULT suspends with ``value = yield ev.wait()``.  External
(non-ULT) code uses the blocking accessors, which drive the runtime's
inline scheduler (or sleep-wait in threaded mode).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

from repro.errors import ReproError
from repro.argobots.runtime import Runtime, ULT, WaitDirective


class Eventual:
    """A one-shot, write-once value container (Argobots ``ABT_eventual``).

    The producer calls :meth:`set` (or :meth:`set_exception`); consumers
    either ``yield ev.wait()`` from a ULT or call :meth:`get` from
    ordinary code with the runtime to drive.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ready = False
        self._value = None
        self._exception: Optional[BaseException] = None
        self._waiters: deque[ULT] = deque()
        self._event = threading.Event()
        self._done_callbacks: list = []

    @property
    def is_ready(self) -> bool:
        return self._ready

    def add_done_callback(self, callback) -> None:
        """Run ``callback(eventual)`` once the value is set.

        Fires immediately if the eventual is already ready.  Callbacks
        run on whichever thread calls :meth:`set` /
        :meth:`set_exception`, so they must be cheap and non-blocking
        (the async I/O layer uses them to timestamp completions and
        advance its in-flight window).
        """
        with self._lock:
            if not self._ready:
                self._done_callbacks.append(callback)
                return
        callback(self)

    def set(self, value=None) -> None:
        with self._lock:
            if self._ready:
                raise ReproError("eventual already set")
            self._ready = True
            self._value = value
            waiters, self._waiters = self._waiters, deque()
            callbacks, self._done_callbacks = self._done_callbacks, []
        self._event.set()
        for ult in waiters:
            ult.resume(value)
        for callback in callbacks:
            callback(self)

    def set_exception(self, exc: BaseException) -> None:
        with self._lock:
            if self._ready:
                raise ReproError("eventual already set")
            self._ready = True
            self._exception = exc
            waiters, self._waiters = self._waiters, deque()
            callbacks, self._done_callbacks = self._done_callbacks, []
        self._event.set()
        for ult in waiters:
            # Deliver by resuming; the value raises on unwrap.
            ult.resume(_Raiser(exc))
        for callback in callbacks:
            callback(self)

    def _unwrap(self):
        if self._exception is not None:
            raise self._exception
        return self._value

    def wait(self) -> WaitDirective:
        """Directive for ULTs: ``value = yield ev.wait()``."""

        def register(ult: ULT) -> None:
            with self._lock:
                if self._ready:
                    resume_now = True
                else:
                    self._waiters.append(ult)
                    resume_now = False
            if resume_now:
                ult.resume(self._result_token())

        return WaitDirective(
            ready=lambda: self._ready,
            value=self._result_token,
            register=register,
        )

    def _result_token(self):
        if self._exception is not None:
            return _Raiser(self._exception)
        return self._value

    def get(self, runtime: Runtime):
        """Blocking accessor for non-ULT callers."""
        if runtime.threaded:
            self._event.wait()
        else:
            runtime.run_until(lambda: self._ready)
        return self._unwrap()


class _Raiser:
    """Sentinel delivered to a waiting ULT when an eventual failed.

    ``unwrap_wait_result`` turns it back into a raised exception at the
    resumption site.
    """

    __slots__ = ("exception",)

    def __init__(self, exception: BaseException):
        self.exception = exception


def unwrap_wait_result(value):
    """Raise if ``value`` is an exception token, else return it.

    ULTs that wait on eventuals which may fail should filter the yielded
    value through this helper::

        result = unwrap_wait_result((yield ev.wait()))
    """
    if isinstance(value, _Raiser):
        raise value.exception
    return value


def ult_join(ult: ULT) -> WaitDirective:
    """Directive: suspend until another ULT finishes (``ABT_thread_join``).

    Usage::

        child = runtime.spawn(work)
        result = unwrap_wait_result((yield ult_join(child)))
    """

    def token():
        if ult.exception is not None:
            return _Raiser(ult.exception)
        return ult._value

    def register(waiter: ULT) -> None:
        ult.add_done_callback(lambda _finished: waiter.resume(token()))

    return WaitDirective(ready=lambda: ult.done, value=token,
                         register=register)


class Mutex:
    """A cooperative mutex (FIFO handoff).

    ULT usage::

        yield mutex.lock()
        try:
            ...critical section...
        finally:
            mutex.unlock()
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._locked = False
        self._waiters: deque[ULT] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def lock(self) -> WaitDirective:
        def ready() -> bool:
            # Opportunistic acquire: called by the scheduler right before
            # deciding whether to suspend.
            with self._lock:
                if not self._locked:
                    self._locked = True
                    return True
                return False

        def register(ult: ULT) -> None:
            with self._lock:
                if not self._locked:
                    self._locked = True
                    acquired = True
                else:
                    self._waiters.append(ult)
                    acquired = False
            if acquired:
                ult.resume(None)

        return WaitDirective(ready=ready, value=lambda: None, register=register)

    def try_lock(self) -> bool:
        with self._lock:
            if self._locked:
                return False
            self._locked = True
            return True

    def unlock(self) -> None:
        with self._lock:
            if not self._locked:
                raise ReproError("unlock of an unlocked mutex")
            if self._waiters:
                nxt = self._waiters.popleft()
                # Hand the lock directly to the next waiter (stays locked).
            else:
                nxt = None
                self._locked = False
        if nxt is not None:
            nxt.resume(None)


class Barrier:
    """A reusable ULT barrier for ``parties`` participants."""

    def __init__(self, parties: int):
        if parties <= 0:
            raise ValueError("parties must be positive")
        self.parties = parties
        self._lock = threading.Lock()
        self._count = 0
        self._generation = 0
        self._waiters: deque[ULT] = deque()

    def wait(self) -> WaitDirective:
        """Directive: ``yield barrier.wait()``; value is the generation."""
        state = {}

        def register(ult: ULT) -> None:
            release = None
            with self._lock:
                generation = self._generation
                self._count += 1
                if self._count == self.parties:
                    self._count = 0
                    self._generation += 1
                    release, self._waiters = list(self._waiters), deque()
                    state["gen"] = generation
                else:
                    self._waiters.append(ult)
            if release is not None:
                for waiter in release:
                    waiter.resume(generation)
                ult.resume(generation)

        return WaitDirective(
            ready=lambda: False,  # always suspend; register decides release
            value=lambda: state.get("gen"),
            register=register,
        )
