"""A synthetic NOvA-like workload (paper section III).

The paper evaluates HEPnOS with the NOvA experiment's electron-neutrino
candidate-selection application: events are triggered detector readouts,
each split into *slices* (candidate interactions) carrying reconstructed
physics quantities; a CAFAna selection function accepts or rejects each
slice.  The real data and code are proprietary, so this package provides
a statistically analogous substitute:

- :mod:`repro.nova.datamodel` -- ``SliceData`` (a representative subset
  of the ~600 reconstructed quantities) and ``EventHeader``;
- :mod:`repro.nova.generator` -- a deterministic synthetic generator
  reproducing the paper's granularities (slices per event, events per
  file, beam vs cosmic profiles, heavy-tailed file sizes);
- :mod:`repro.nova.files` -- CAF-like hdf5lite file writing/reading;
- :mod:`repro.nova.cafana` -- Cut/Var combinators and the
  electron-neutrino candidate selection used by both workflows.
"""

from repro.nova.datamodel import SliceData, EventHeader, SLICE_LABEL
from repro.nova.generator import (
    GeneratorConfig,
    NovaGenerator,
    BEAM,
    COSMIC,
)
from repro.nova.files import (
    write_nova_file,
    read_nova_file,
    generate_file_set,
    FileSetSummary,
)
from repro.nova.cafana import (
    Cut,
    Var,
    Spectrum,
    kQuality,
    kContainment,
    kNuePID,
    kNumuPID,
    kCosmicRej,
    nue_candidate_cut,
    numu_candidate_cut,
    select_slices,
)

__all__ = [
    "SliceData",
    "EventHeader",
    "SLICE_LABEL",
    "GeneratorConfig",
    "NovaGenerator",
    "BEAM",
    "COSMIC",
    "write_nova_file",
    "read_nova_file",
    "generate_file_set",
    "FileSetSummary",
    "Cut",
    "Var",
    "Spectrum",
    "kQuality",
    "kContainment",
    "kNuePID",
    "kNumuPID",
    "kCosmicRej",
    "nue_candidate_cut",
    "numu_candidate_cut",
    "select_slices",
]
