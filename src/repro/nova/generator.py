"""Deterministic synthetic detector-data generation.

Granularities follow the paper's dataset (section III-B): the 1929-file
beam sample holds 4,359,414 events and 17,878,347 slices -- about 4.1
slices per triggered readout and ~2260 events per file; cosmic files
carry 12x more slices.  Generation is columnar (NumPy) and seeded per
(run, subrun), so any subset of the data can be produced independently,
in any order, by any process, with identical results.

Distributions are chosen so the CAFAna-style candidate selection in
:mod:`repro.nova.cafana` accepts most injected signal slices and almost
no background -- reproducing the analysis' huge down-selection ratio
without its proprietary inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Sequence

import numpy as np

from repro.nova.datamodel import SLICE_COLUMNS, EventHeader, SliceData
from repro.utils import fnv1a_64, mix64

#: Detector half-width/height and length [cm] (NOvA far detector scale).
DETECTOR_HALF_XY = 780.0
DETECTOR_LEN_Z = 6000.0


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable knobs of the synthetic data stream."""

    seed: int = 2018
    #: mean slices per triggered readout
    slices_per_event: float = 4.1
    #: fraction of slices that are injected nu_e signal
    signal_fraction: float = 0.02
    #: events per subrun and subruns per run (drives container shape)
    events_per_subrun: int = 64
    subruns_per_run: int = 64
    #: trigger type recorded in headers (0 = beam, 1 = cosmic)
    trigger: int = 0


#: The beam profile: the paper's evaluation sample.
BEAM = GeneratorConfig()

#: Cosmic-ray profile: 12x the beam slice rate, no beam signal.
COSMIC = replace(BEAM, slices_per_event=4.1 * 12, signal_fraction=0.0,
                 trigger=1)


class NovaGenerator:
    """Generates slice tables, object vectors, and event numbering."""

    def __init__(self, config: GeneratorConfig = BEAM):
        self.config = config

    # -- numbering ---------------------------------------------------------

    def event_numbering(self, n_events: int, first_run: int = 1000
                        ) -> Iterator[tuple[int, int, int]]:
        """Yield (run, subrun, event) for a stream of ``n_events``."""
        cfg = self.config
        for i in range(n_events):
            subrun_index, event = divmod(i, cfg.events_per_subrun)
            run_index, subrun = divmod(subrun_index, cfg.subruns_per_run)
            yield first_run + run_index, subrun, event

    # -- columnar generation --------------------------------------------------

    def _rng(self, run: int, subrun: int) -> np.random.Generator:
        token = f"{self.config.seed}:{run}:{subrun}".encode()
        return np.random.default_rng(mix64(fnv1a_64(token)))

    def subrun_table(self, run: int, subrun: int,
                     events: Sequence[int]) -> dict[str, np.ndarray]:
        """Columnar slice table for the given events of one subrun.

        Returns a dict with ``run``/``subrun``/``evt`` id columns plus
        one array per :data:`SLICE_COLUMNS` entry, all of equal length
        (one row per slice), and ``header_nslices`` aligned to
        ``events``.
        """
        cfg = self.config
        rng = self._rng(run, subrun)
        events = np.asarray(list(events), dtype=np.int64)
        # Draw per-event slice counts for the *whole* subrun so that any
        # event subset sees the same counts regardless of who asks.
        all_counts = rng.poisson(cfg.slices_per_event,
                                 cfg.events_per_subrun).astype(np.int64)
        all_counts = np.maximum(all_counts, 1)  # a trigger has >= 1 slice
        if np.any(events >= cfg.events_per_subrun):
            extra = int(events.max()) + 1 - cfg.events_per_subrun
            all_counts = np.concatenate([
                all_counts,
                np.maximum(rng.poisson(cfg.slices_per_event, extra), 1),
            ])
        counts = all_counts[events]
        total = int(counts.sum())

        # Per-slice RNG must not depend on which events were requested:
        # derive one generator per event from the subrun seed.
        tables = []
        for event, count in zip(events, counts):
            event_rng = np.random.default_rng(
                mix64(fnv1a_64(
                    f"{cfg.seed}:{run}:{subrun}:{int(event)}".encode()
                ))
            )
            tables.append(self._slices_block(run, subrun, int(event),
                                             int(count), event_rng))
        out: dict[str, np.ndarray] = {}
        for name, dtype in (("run", "<i8"), ("subrun", "<i8"), ("evt", "<i8")):
            out[name] = np.concatenate([t[name] for t in tables]).astype(dtype)
        for name, dtype in SLICE_COLUMNS:
            out[name] = np.concatenate([t[name] for t in tables]).astype(dtype)
        out["header_nslices"] = counts
        assert len(out["run"]) == total
        return out

    def _slices_block(self, run: int, subrun: int, event: int, count: int,
                      rng: np.random.Generator) -> dict[str, np.ndarray]:
        cfg = self.config
        signal = rng.random(count) < cfg.signal_fraction

        nhit = np.where(
            signal,
            np.exp(rng.normal(4.5, 0.5, count)),
            np.exp(rng.normal(3.2, 0.8, count)),
        ).astype(np.int64) + 1
        ncontplanes = np.maximum(
            1, (nhit / 3 + rng.normal(0, 2, count)).astype(np.int64)
        )
        cal_e = np.where(
            signal,
            np.clip(rng.normal(2.0, 0.6, count), 0.55, 10.0),
            rng.exponential(0.8, count),
        )
        shower_e = cal_e * rng.uniform(0.1, 0.95, count)
        shower_len = rng.gamma(2.0, 80.0, count)

        cvn_e = np.where(signal, rng.beta(8.0, 1.5, count),
                         rng.beta(0.6, 6.0, count))
        cvn_mu = np.where(signal, rng.beta(1.0, 8.0, count),
                          rng.beta(1.2, 3.0, count))
        remid = np.where(signal, rng.beta(1.0, 8.0, count),
                         rng.uniform(0.0, 1.0, count))
        cosrej = np.where(signal, rng.beta(1.0, 6.0, count),
                          rng.beta(2.0, 1.2, count))

        # Signal vertices are generated well inside the detector;
        # background is uniform (cosmics enter from outside).
        margin = np.where(signal, 100.0, 0.0)
        vtx_x = rng.uniform(-DETECTOR_HALF_XY + margin,
                            DETECTOR_HALF_XY - margin)
        vtx_y = rng.uniform(-DETECTOR_HALF_XY + margin,
                            DETECTOR_HALF_XY - margin)
        vtx_z = rng.uniform(margin, DETECTOR_LEN_Z - margin)
        dist_to_edge = np.minimum.reduce([
            DETECTOR_HALF_XY - np.abs(vtx_x),
            DETECTOR_HALF_XY - np.abs(vtx_y),
            vtx_z,
            DETECTOR_LEN_Z - vtx_z,
        ])
        time = rng.uniform(0.0, 500.0, count)

        base = ((run * 1_000_000 + subrun) * 1_000_000 + event) * 1000
        slice_id = base + np.arange(count, dtype=np.int64)
        n = count
        return {
            "run": np.full(n, run, dtype=np.int64),
            "subrun": np.full(n, subrun, dtype=np.int64),
            "evt": np.full(n, event, dtype=np.int64),
            "slice_id": slice_id,
            "nhit": nhit,
            "ncontplanes": ncontplanes,
            "cal_e": cal_e,
            "shower_e": shower_e,
            "shower_len": shower_len,
            "cvn_e": cvn_e,
            "cvn_mu": cvn_mu,
            "remid": remid,
            "cosrej": cosrej,
            "vtx_x": vtx_x,
            "vtx_y": vtx_y,
            "vtx_z": vtx_z,
            "dist_to_edge": dist_to_edge,
            "time": time,
            "true_pdg": np.where(signal, 12, 0).astype(np.int32),
        }

    # -- object views ---------------------------------------------------------

    def slices_for_event(self, run: int, subrun: int, event: int
                         ) -> list[SliceData]:
        """The event's slices as objects (what gets stored in HEPnOS)."""
        table = self.subrun_table(run, subrun, [event])
        return table_to_slices(table)

    def header_for_event(self, run: int, subrun: int, event: int
                         ) -> EventHeader:
        table = self.subrun_table(run, subrun, [event])
        return EventHeader(
            run=run, subrun=subrun, event=event,
            pot=float(len(table["run"])) * 1e13,
            trigger=self.config.trigger,
            nslices=int(table["header_nslices"][0]),
        )


def table_to_slices(table: dict[str, np.ndarray],
                    rows: Sequence[int] | None = None) -> list[SliceData]:
    """Convert table rows to :class:`SliceData` objects."""
    if rows is None:
        rows = range(len(table["slice_id"]))
    column_names = [name for name, _ in SLICE_COLUMNS]
    out = []
    for i in rows:
        out.append(SliceData(**{
            name: table[name][i].item() for name in column_names
        }))
    return out
