"""CAFAna-style selection: Var/Cut combinators and the nu_e candidate cut.

CAFAna (the NOvA analysis framework the paper's application uses)
expresses selections as composable *cuts* over slice records.  Cuts here
work in two modes sharing one definition:

- object mode: ``cut(slice_data) -> bool`` for the HEPnOS workflow,
  which processes deserialized :class:`SliceData` objects;
- columnar mode: ``cut.mask(table) -> bool ndarray`` for the file-based
  workflow's vectorized scan over slice tables.

Cuts compose with ``&``, ``|`` and ``~``.

Vars and Cuts additionally carry a ``columns`` declaration: the set of
table fields their columnar evaluation reads.  Plain attribute Vars
(``Var("cal_e")``) declare themselves, constants declare nothing, and
composition takes unions -- so a fully declared cut like
``nue_candidate_cut`` knows exactly which columns a server-side
projection must fetch.  A Var built from an opaque callable without an
explicit ``columns=`` argument propagates ``None`` ("unknown"), which
tells batch loaders to fall back to whole-object, per-event evaluation.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import numpy as np

_UNSET = object()


def _merge_columns(*parts) -> Optional[frozenset]:
    """Union of declarations; any unknown (None) poisons the result."""
    out: frozenset = frozenset()
    for part in parts:
        if part is None:
            return None
        out |= part
    return out


class Var:
    """A named quantity computed from a slice (or a table column).

    Vars compose arithmetically (``kCalE / kNHit``, ``kShwE * 1.02``),
    producing derived Vars usable in both object and columnar modes --
    CAFAna's Var algebra.
    """

    def __init__(self, name: str, fn: Callable = None,
                 cfn: Optional[Callable] = None,
                 columns: Optional[Iterable[str]] = _UNSET):
        self.name = name
        self._fn = fn if fn is not None else (lambda s: getattr(s, name))
        self._cfn = cfn
        if columns is _UNSET:
            # A plain attribute Var reads exactly its own column; an
            # opaque callable reads who-knows-what.
            columns = frozenset({name}) if fn is None else None
        #: table fields the columnar evaluation reads (None = unknown)
        self.columns: Optional[frozenset] = (
            None if columns is None else frozenset(columns)
        )

    def __call__(self, slice_data) -> float:
        return self._fn(slice_data)

    def column(self, table: dict) -> np.ndarray:
        if self._cfn is not None:
            return self._cfn(table)
        if self.name in table:
            return table[self.name]
        raise KeyError(f"table has no column {self.name!r}")

    # -- arithmetic composition ------------------------------------------------

    @staticmethod
    def _lift(value) -> "Var":
        if isinstance(value, Var):
            return value
        return Var(repr(value), lambda s: value, lambda t: value,
                   columns=frozenset())

    def _binary(self, other, op, symbol: str, reflected: bool = False) -> "Var":
        other = Var._lift(other)
        left, right = (other, self) if reflected else (self, other)
        return Var(
            f"({left.name}{symbol}{right.name})",
            lambda s: op(left(s), right(s)),
            lambda t: op(left.column(t), right.column(t)),
            columns=_merge_columns(left.columns, right.columns),
        )

    def __add__(self, other) -> "Var":
        return self._binary(other, lambda a, b: a + b, "+")

    def __radd__(self, other) -> "Var":
        return self._binary(other, lambda a, b: a + b, "+", reflected=True)

    def __sub__(self, other) -> "Var":
        return self._binary(other, lambda a, b: a - b, "-")

    def __rsub__(self, other) -> "Var":
        return self._binary(other, lambda a, b: a - b, "-", reflected=True)

    def __mul__(self, other) -> "Var":
        return self._binary(other, lambda a, b: a * b, "*")

    def __rmul__(self, other) -> "Var":
        return self._binary(other, lambda a, b: a * b, "*", reflected=True)

    def __truediv__(self, other) -> "Var":
        return self._binary(other, lambda a, b: a / b, "/")

    def __rtruediv__(self, other) -> "Var":
        return self._binary(other, lambda a, b: a / b, "/", reflected=True)

    # Comparisons produce cuts.
    def __gt__(self, value) -> "Cut":
        return Cut(f"{self.name}>{value}",
                   lambda s: self(s) > value,
                   lambda t: self.column(t) > value,
                   columns=self.columns)

    def __ge__(self, value) -> "Cut":
        return Cut(f"{self.name}>={value}",
                   lambda s: self(s) >= value,
                   lambda t: self.column(t) >= value,
                   columns=self.columns)

    def __lt__(self, value) -> "Cut":
        return Cut(f"{self.name}<{value}",
                   lambda s: self(s) < value,
                   lambda t: self.column(t) < value,
                   columns=self.columns)

    def __le__(self, value) -> "Cut":
        return Cut(f"{self.name}<={value}",
                   lambda s: self(s) <= value,
                   lambda t: self.column(t) <= value,
                   columns=self.columns)


class Cut:
    """A boolean selection over slices, composable with & | ~."""

    def __init__(self, name: str, fn: Callable, vfn: Optional[Callable] = None,
                 columns: Optional[Iterable[str]] = None):
        self.name = name
        self._fn = fn
        self._vfn = vfn
        #: table fields :meth:`mask` reads (None = unknown; such cuts
        #: cannot drive a server-side column projection)
        self.columns: Optional[frozenset] = (
            None if columns is None else frozenset(columns)
        )

    def __call__(self, slice_data) -> bool:
        return bool(self._fn(slice_data))

    def mask(self, table: dict) -> np.ndarray:
        """Vectorized evaluation over a columnar slice table."""
        if self._vfn is not None:
            return np.asarray(self._vfn(table), dtype=bool)
        # Fallback: row-by-row via a lightweight attribute proxy.
        n = len(next(iter(table.values())))
        out = np.empty(n, dtype=bool)
        proxy = _RowProxy(table)
        for i in range(n):
            proxy._i = i
            out[i] = self._fn(proxy)
        return out

    def __and__(self, other: "Cut") -> "Cut":
        return Cut(
            f"({self.name} && {other.name})",
            lambda s: self._fn(s) and other._fn(s),
            (lambda t: self.mask(t) & other.mask(t)),
            columns=_merge_columns(self.columns, other.columns),
        )

    def __or__(self, other: "Cut") -> "Cut":
        return Cut(
            f"({self.name} || {other.name})",
            lambda s: self._fn(s) or other._fn(s),
            (lambda t: self.mask(t) | other.mask(t)),
            columns=_merge_columns(self.columns, other.columns),
        )

    def __invert__(self) -> "Cut":
        return Cut(
            f"!{self.name}",
            lambda s: not self._fn(s),
            (lambda t: ~self.mask(t)),
            columns=self.columns,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cut({self.name})"


class _RowProxy:
    """Presents one table row with attribute access (cut fallback path)."""

    __slots__ = ("_table", "_i")

    def __init__(self, table: dict):
        self._table = table
        self._i = 0

    def __getattr__(self, name: str):
        try:
            return self._table[name][self._i]
        except KeyError:
            raise AttributeError(name) from None


# -- the electron-neutrino candidate selection ---------------------------------

kNHit = Var("nhit")
kNContPlanes = Var("ncontplanes")
kCalE = Var("cal_e")
kCVNe = Var("cvn_e")
kCVNmu = Var("cvn_mu")
kRemid = Var("remid")
kCosRej = Var("cosrej")
kDistToEdge = Var("dist_to_edge")

#: Basic reconstruction quality.
kQuality = (kNHit >= 30) & (kNContPlanes >= 4) & (kCalE >= 0.5) & (kCalE <= 4.0)

#: Fiducial containment of the candidate vertex.
kContainment = kDistToEdge >= 50.0

#: Electron-neutrino particle identification.
kNuePID = (kCVNe >= 0.75) & (kCVNmu <= 0.5) & (kRemid <= 0.5)

#: Cosmic-ray rejection.
kCosmicRej = kCosRej <= 0.45

#: The full candidate selection used by both workflows.
nue_candidate_cut = kQuality & kContainment & kNuePID & kCosmicRej

#: Muon-neutrino particle identification (the disappearance channel):
#: muon-like (high ReMId / CVN-mu), NOT electron-like.
kNumuPID = (kRemid >= 0.7) & (kCVNmu >= 0.5) & (kCVNe <= 0.5)

#: The numu candidate selection (quality + containment + muon PID).
numu_candidate_cut = kQuality & kContainment & kNumuPID & kCosmicRej


def select_slices(slices, cut: Cut = nue_candidate_cut) -> list[int]:
    """Object-mode selection: IDs of the accepted slices."""
    return [s.slice_id for s in slices if cut(s)]


def select_from_table(table: dict, cut: Cut = nue_candidate_cut) -> np.ndarray:
    """Columnar-mode selection: accepted slice_ids from a table."""
    return table["slice_id"][cut.mask(table)]


class Spectrum:
    """A filled histogram of a Var over selected slices (CAFAna-style).

    Tracks accumulated exposure (protons-on-target) so spectra from
    different samples can be POT-normalized and combined, the way
    CAFAna compares data periods.
    """

    def __init__(self, var: Var, bins: Sequence[float],
                 cut: Cut = nue_candidate_cut):
        self.var = var
        self.cut = cut
        self.edges = np.asarray(bins, dtype=float)
        if len(self.edges) < 2 or np.any(np.diff(self.edges) <= 0):
            raise ValueError("bins must be increasing with >= 2 edges")
        self.counts = np.zeros(len(self.edges) - 1, dtype=float)
        self.entries = 0
        self.pot = 0.0

    def fill_slices(self, slices, weight: float = 1.0,
                    pot: float = 0.0) -> int:
        """Fill from objects; returns how many passed the cut."""
        values = [self.var(s) for s in slices if self.cut(s)]
        if values:
            hist, _ = np.histogram(values, bins=self.edges)
            self.counts += weight * hist
        self.entries += len(values)
        self.pot += pot
        return len(values)

    def fill_table(self, table: dict, weight: float = 1.0,
                   pot: float = 0.0) -> int:
        mask = self.cut.mask(table)
        values = self.var.column(table)[mask]
        hist, _ = np.histogram(values, bins=self.edges)
        self.counts += weight * hist
        self.entries += int(mask.sum())
        self.pot += pot
        return int(mask.sum())

    @property
    def integral(self) -> float:
        return float(self.counts.sum())

    def scaled_to_pot(self, target_pot: float) -> "Spectrum":
        """A copy normalized to ``target_pot`` exposure."""
        if self.pot <= 0:
            raise ValueError("spectrum has no recorded exposure")
        out = Spectrum(self.var, self.edges, self.cut)
        out.counts = self.counts * (target_pot / self.pot)
        out.entries = self.entries
        out.pot = target_pot
        return out

    def __add__(self, other: "Spectrum") -> "Spectrum":
        """Combine two spectra of identical binning (exposures add)."""
        if not np.array_equal(self.edges, other.edges):
            raise ValueError("spectra have different binnings")
        out = Spectrum(self.var, self.edges, self.cut)
        out.counts = self.counts + other.counts
        out.entries = self.entries + other.entries
        out.pot = self.pot + other.pot
        return out
