"""Two-flavor-dominant neutrino oscillation weights (PMNS).

NOvA measures P(nu_mu -> nu_e) and P(nu_mu -> nu_mu) over an 810 km
baseline (paper section III-A).  For spectrum reweighting we use the
standard approximate formulas:

- survival:    P(mumu) = 1 - sin^2(2 theta_23) sin^2(1.267 dm32 L / E)
- appearance:  P(mue) ~= sin^2(theta_23) sin^2(2 theta_13)
                          sin^2(1.267 dm32 L / E)

with E in GeV, L in km, dm32 in eV^2 (vacuum, leading order -- no
matter effects or CP phase; adequate for reweighting demos, not for a
physics measurement).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: NOvA far-detector baseline [km].
BASELINE_KM = 810.0


@dataclass(frozen=True)
class OscillationParameters:
    """The PMNS parameters the formulas use (PDG-like central values)."""

    dm32: float = 2.45e-3          # [eV^2]
    sin2_theta23: float = 0.55     # sin^2(theta_23)
    sin2_2theta13: float = 0.085   # sin^2(2 theta_13)

    def __post_init__(self):
        if not 0.0 <= self.sin2_theta23 <= 1.0:
            raise ValueError("sin^2(theta_23) must be in [0, 1]")
        if not 0.0 <= self.sin2_2theta13 <= 1.0:
            raise ValueError("sin^2(2 theta_13) must be in [0, 1]")


PDG2022 = OscillationParameters()


def _phase(energy_gev, dm32: float, baseline_km: float):
    energy = np.maximum(np.asarray(energy_gev, dtype=float), 1e-6)
    return 1.267 * dm32 * baseline_km / energy


def survival_probability(energy_gev, params: OscillationParameters = PDG2022,
                         baseline_km: float = BASELINE_KM):
    """P(nu_mu -> nu_mu); scalar in, scalar out (arrays pass through)."""
    sin2_2theta23 = 4.0 * params.sin2_theta23 * (1.0 - params.sin2_theta23)
    phase = _phase(energy_gev, params.dm32, baseline_km)
    out = 1.0 - sin2_2theta23 * np.sin(phase) ** 2
    return float(out) if np.isscalar(energy_gev) else out

def appearance_probability(energy_gev,
                           params: OscillationParameters = PDG2022,
                           baseline_km: float = BASELINE_KM):
    """P(nu_mu -> nu_e), leading order."""
    phase = _phase(energy_gev, params.dm32, baseline_km)
    out = (params.sin2_theta23 * params.sin2_2theta13
           * np.sin(phase) ** 2)
    return float(out) if np.isscalar(energy_gev) else out


def oscillation_maximum_energy(params: OscillationParameters = PDG2022,
                               baseline_km: float = BASELINE_KM) -> float:
    """The energy [GeV] of the first oscillation maximum (~1.6 GeV at
    810 km with PDG parameters)."""
    return 1.267 * params.dm32 * baseline_km / (math.pi / 2.0)


def oscillation_weight_var(mode: str = "appearance",
                           params: OscillationParameters = PDG2022,
                           energy_var=None):
    """A CAFAna-style Var computing the per-slice oscillation weight.

    ``energy_var`` defaults to the reconstructed calorimetric energy.
    Use with ``Spectrum.fill_*(..., weight=...)`` per slice or as a
    derived column.
    """
    from repro.nova.cafana import Var

    energy = energy_var if energy_var is not None else Var("cal_e")
    fn = (appearance_probability if mode == "appearance"
          else survival_probability)
    if mode not in ("appearance", "survival"):
        raise ValueError(f"unknown oscillation mode {mode!r}")
    return Var(
        f"osc_{mode}",
        lambda s: fn(energy(s), params),
        lambda t: fn(energy.column(t), params),
    )
