"""The reconstructed-data model: slices and event headers.

A *slice* is a spatio-temporally clustered region of detector activity
-- a candidate neutrino interaction.  NOvA derives ~600 quantities per
slice; we carry the representative subset the candidate selection needs
(calorimetry, containment geometry, PID scores, cosmic rejection),
plus a truth label used only for validating the synthetic generator.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.serial import register_type

#: The product label both workflows use for slice vectors.
SLICE_LABEL = "slices"


@dataclass
class SliceData:
    """One candidate interaction ("slice") and its physics quantities."""

    #: globally unique slice identifier (what the selection reports)
    slice_id: int = 0
    #: number of hits in the slice
    nhit: int = 0
    #: number of contiguous planes with activity
    ncontplanes: int = 0
    #: calorimetric energy [GeV]
    cal_e: float = 0.0
    #: leading-shower energy [GeV]
    shower_e: float = 0.0
    #: leading-shower length [cm]
    shower_len: float = 0.0
    #: CVN electron-neutrino classifier score [0, 1]
    cvn_e: float = 0.0
    #: CVN muon-neutrino classifier score [0, 1]
    cvn_mu: float = 0.0
    #: ReMId muon identification score [0, 1]
    remid: float = 0.0
    #: cosmic-rejection BDT score [0, 1]; larger = more cosmic-like
    cosrej: float = 0.0
    #: reconstructed vertex [cm]
    vtx_x: float = 0.0
    vtx_y: float = 0.0
    vtx_z: float = 0.0
    #: distance from the vertex to the nearest detector edge [cm]
    dist_to_edge: float = 0.0
    #: slice time within the trigger window [us]
    time: float = 0.0
    #: truth label (synthetic-data only): 12 = nu_e signal, 0 = background
    true_pdg: int = 0

    def serialize(self, ar) -> None:
        for f in fields(self):
            setattr(self, f.name, ar.io(getattr(self, f.name)))


@dataclass
class EventHeader:
    """Per-readout metadata (the ``rec.hdr`` table)."""

    run: int = 0
    subrun: int = 0
    event: int = 0
    #: beam spill protons-on-target
    pot: float = 0.0
    #: trigger type: 0 = beam (NuMI), 1 = cosmic
    trigger: int = 0
    #: number of slices in the readout
    nslices: int = 0

    def serialize(self, ar) -> None:
        for f in fields(self):
            setattr(self, f.name, ar.io(getattr(self, f.name)))


register_type(SliceData, "nova.SliceData")
register_type(EventHeader, "nova.EventHeader")

#: Columnar dtypes for the slice table (hdf5lite layout).
SLICE_COLUMNS = (
    ("slice_id", "<i8"),
    ("nhit", "<i4"),
    ("ncontplanes", "<i4"),
    ("cal_e", "<f4"),
    ("shower_e", "<f4"),
    ("shower_len", "<f4"),
    ("cvn_e", "<f4"),
    ("cvn_mu", "<f4"),
    ("remid", "<f4"),
    ("cosrej", "<f4"),
    ("vtx_x", "<f4"),
    ("vtx_y", "<f4"),
    ("vtx_z", "<f4"),
    ("dist_to_edge", "<f4"),
    ("time", "<f4"),
    ("true_pdg", "<i4"),
)
