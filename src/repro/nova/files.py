"""CAF-like file production and reading.

The traditional workflow's inputs are files of reconstructed events.
Each file holds the ``rec.slc`` class table (one row per slice, with
``run``/``subrun``/``evt`` id columns -- the layout HDF2HEPnOS expects)
and a ``rec.hdr`` table (one row per event).

File sizes are *not* uniform: the paper attributes the traditional
workflow's load imbalance partly to the wide variation in file sizes
and contents.  :func:`generate_file_set` draws events-per-file from a
lognormal around the configured mean to reproduce that spread.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.hdf5lite import H5LiteFile
from repro.nova.datamodel import SLICE_COLUMNS, EventHeader
from repro.nova.generator import GeneratorConfig, NovaGenerator
from repro.utils import fnv1a_64, mix64


def write_nova_file(path: str, generator: NovaGenerator,
                    triples: Sequence[tuple[int, int, int]],
                    compression: Optional[str] = None) -> int:
    """Write one CAF-like file holding the given (run, subrun, event)s.

    ``compression="zlib"`` deflates every table (real CAF HDF5 files are
    compressed too).  Returns the number of slices written.
    """
    by_subrun: dict[tuple[int, int], list[int]] = {}
    for run, subrun, event in triples:
        by_subrun.setdefault((run, subrun), []).append(event)
    tables = [
        generator.subrun_table(run, subrun, sorted(events))
        for (run, subrun), events in sorted(by_subrun.items())
    ]

    def concat(name: str) -> np.ndarray:
        return np.concatenate([t[name] for t in tables])

    with H5LiteFile.create(path) as f:
        slc = f.create_group("rec/slc")
        slc.attrs["class"] = "rec.slc"
        for name in ("run", "subrun", "evt"):
            slc.create_dataset(name, concat(name), compression=compression)
        for name, _ in SLICE_COLUMNS:
            slc.create_dataset(name, concat(name), compression=compression)

        hdr = f.create_group("rec/hdr")
        hdr.attrs["class"] = "rec.hdr"
        runs, subruns, events, nslices = [], [], [], []
        for (run, subrun), evs in sorted(by_subrun.items()):
            table = next(
                t for t in tables
                if t["run"][0] == run and t["subrun"][0] == subrun
            )
            for event, count in zip(sorted(evs), table["header_nslices"]):
                runs.append(run)
                subruns.append(subrun)
                events.append(event)
                nslices.append(int(count))
        hdr.create_dataset("run", np.asarray(runs, dtype=np.int64))
        hdr.create_dataset("subrun", np.asarray(subruns, dtype=np.int64))
        hdr.create_dataset("evt", np.asarray(events, dtype=np.int64))
        hdr.create_dataset("nslices", np.asarray(nslices, dtype=np.int64))
        hdr.create_dataset(
            "trigger",
            np.full(len(runs), generator.config.trigger, dtype=np.int32),
        )
    return int(sum(len(t["run"]) for t in tables))


def read_nova_file(path: str) -> dict[str, np.ndarray]:
    """Load a file's full slice table (plus header columns under hdr_*)."""
    with H5LiteFile.open(path) as f:
        slc = f.root.group("rec/slc")
        out = {name: slc.read(name) for name in slc.datasets()}
        hdr = f.root.group("rec/hdr")
        for name in hdr.datasets():
            out[f"hdr_{name}"] = hdr.read(name)
    return out


def iter_file_events(path: str) -> Iterator[tuple[tuple[int, int, int], dict]]:
    """Yield ((run, subrun, event), slice-table-rows) per event, in order.

    This is the traditional workflow's sequential scan of a file.
    """
    table = read_nova_file(path)
    runs, subruns, events = table["run"], table["subrun"], table["evt"]
    n = len(runs)
    if n == 0:
        return
    order = np.lexsort((events, subruns, runs))
    ids = np.stack([runs[order], subruns[order], events[order]])
    boundaries = np.nonzero(np.any(np.diff(ids, axis=1) != 0, axis=0))[0] + 1
    for rows in np.split(order, boundaries):
        triple = (int(runs[rows[0]]), int(subruns[rows[0]]), int(events[rows[0]]))
        yield triple, {name: table[name][rows] for name in table
                       if not name.startswith("hdr_")}


@dataclass
class FileSetSummary:
    """What :func:`generate_file_set` produced."""

    paths: list = field(default_factory=list)
    total_events: int = 0
    total_slices: int = 0
    events_per_file: list = field(default_factory=list)

    @property
    def num_files(self) -> int:
        return len(self.paths)


def generate_file_set(directory: str, num_files: int,
                      mean_events_per_file: int = 64,
                      config: Optional[GeneratorConfig] = None,
                      size_spread: float = 0.35,
                      seed: int = 7) -> FileSetSummary:
    """Produce a set of CAF-like files with heavy-tailed sizes.

    ``size_spread`` is the sigma of the lognormal events-per-file draw
    (0 gives equal-size files); the mean is preserved.  Event numbering
    is a single global stream partitioned contiguously into files, as a
    real data-taking period would be.
    """
    os.makedirs(directory, exist_ok=True)
    config = config or GeneratorConfig()
    generator = NovaGenerator(config)
    rng = np.random.default_rng(mix64(fnv1a_64(f"fileset:{seed}".encode())))
    if size_spread > 0:
        raw = rng.lognormal(-0.5 * size_spread**2, size_spread, num_files)
        counts = np.maximum(1, (raw * mean_events_per_file).astype(int))
    else:
        counts = np.full(num_files, mean_events_per_file, dtype=int)

    summary = FileSetSummary()
    numbering = generator.event_numbering(int(counts.sum()))
    for i, count in enumerate(counts):
        triples = [next(numbering) for _ in range(int(count))]
        path = os.path.join(directory, f"nova-{i:05d}.h5l")
        slices = write_nova_file(path, generator, triples)
        summary.paths.append(path)
        summary.total_events += int(count)
        summary.total_slices += slices
        summary.events_per_file.append(int(count))
    return summary
