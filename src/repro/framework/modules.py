"""Module types and the per-event context."""

from __future__ import annotations

import abc
from typing import Any, Optional

from repro.errors import HEPnOSError, ProductNotFound
from repro.hepnos.product import product_type_name


class EventContext:
    """One event as seen by modules.

    Products come from two layers: those delivered by the source
    (already stored) and those produced by upstream modules in this very
    event (in-memory, not yet persisted).  ``get`` checks the in-memory
    layer first, so a producer's output is immediately visible
    downstream -- without any intermediate file (the copy-forward
    elimination, now at framework level).
    """

    def __init__(self, triple: tuple, loader=None):
        self._triple = triple
        self._loader = loader  # fn(type_name, label) -> object | None
        self._produced: dict[tuple, Any] = {}
        #: (type_name, label) -> module label that produced it
        self.provenance: dict[tuple, str] = {}
        self._current_module: Optional[str] = None

    @property
    def triple(self) -> tuple:
        return self._triple

    @property
    def run(self) -> int:
        return self._triple[0]

    @property
    def subrun(self) -> int:
        return self._triple[1]

    @property
    def event(self) -> int:
        return self._triple[2]

    # -- product access ---------------------------------------------------

    def get(self, product_type, label: str = ""):
        spec = (product_type_name(product_type), label)
        if spec in self._produced:
            return self._produced[spec]
        if self._loader is not None:
            value = self._loader(spec[0], label)
            if value is not None:
                return value
        raise ProductNotFound(
            f"event {self._triple}: no product type={spec[0]!r} "
            f"label={label!r}"
        )

    def has(self, product_type, label: str = "") -> bool:
        spec = (product_type_name(product_type), label)
        if spec in self._produced:
            return True
        if self._loader is not None:
            return self._loader(spec[0], label) is not None
        return False

    def put(self, obj, label: str = "", type_name=None) -> None:
        """Record a new product (visible downstream; persisted by the sink)."""
        spec = (product_type_name(type_name if type_name is not None else obj),
                label)
        if spec in self._produced:
            raise HEPnOSError(
                f"module {self._current_module!r} overwrites product "
                f"{spec} already produced by "
                f"{self.provenance.get(spec)!r}"
            )
        self._produced[spec] = obj
        self.provenance[spec] = self._current_module or "?"

    @property
    def produced(self) -> dict:
        """The in-memory products of this event (spec -> object)."""
        return dict(self._produced)


class Module(abc.ABC):
    """Base class: every module has a label and lifecycle hooks."""

    def __init__(self, label: Optional[str] = None):
        self.label = label or type(self).__name__

    def begin_job(self) -> None:
        """Called once before the first event."""

    def end_job(self) -> None:
        """Called once after the last event."""


class Producer(Module):
    """Adds products to events."""

    @abc.abstractmethod
    def produce(self, event: EventContext) -> None:
        """Compute and ``event.put`` new products."""


class Filter(Module):
    """Decides whether an event continues down the path."""

    @abc.abstractmethod
    def filter(self, event: EventContext) -> bool:
        """True = keep the event; False = skip remaining modules."""


class Analyzer(Module):
    """Observes events (fills histograms, accumulates results)."""

    @abc.abstractmethod
    def analyze(self, event: EventContext) -> None:
        """Inspect the event; must not add products."""


class CutFilter(Filter):
    """Keeps an event iff any record of a product passes a CAFAna cut.

    Because the cut and the product spec are declared (not buried in an
    opaque ``filter`` body), a columnar source can vectorize this module:
    when it leads the pipeline and its cut declares ``columns``, the
    source evaluates the cut over server-projected arrays for a whole
    batch at once instead of calling :meth:`filter` per event.  Both
    paths implement the same predicate: *any* record passes; an event
    without the product fails.
    """

    def __init__(self, cut, product_type, label: str = "",
                 module_label: Optional[str] = None):
        super().__init__(module_label)
        self.cut = cut
        self.product_type = product_type
        self.product_label = label

    @property
    def columns(self) -> Optional[frozenset]:
        """Fields the cut reads (None = not vectorizable)."""
        return self.cut.columns

    def filter(self, event: EventContext) -> bool:
        try:
            records = event.get(self.product_type, self.product_label)
        except ProductNotFound:
            return False
        return any(self.cut(record) for record in records)
