"""The pipeline: ordered modules between a source and a sink."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import HEPnOSError
from repro.framework.modules import (
    Analyzer,
    CutFilter,
    EventContext,
    Filter,
    Module,
    Producer,
)


@dataclass
class ModuleReport:
    label: str
    kind: str
    events_seen: int = 0
    events_passed: int = 0
    products_put: int = 0
    seconds: float = 0.0

    @property
    def pass_fraction(self) -> float:
        return self.events_passed / self.events_seen if self.events_seen else 0.0


@dataclass
class PipelineReport:
    modules: list = field(default_factory=list)
    events_read: int = 0
    events_completed: int = 0
    seconds: float = 0.0

    def module(self, label: str) -> ModuleReport:
        for report in self.modules:
            if report.label == label:
                return report
        raise KeyError(label)

    def summary(self) -> str:
        lines = [
            f"{'module':<20} {'kind':<9} {'seen':>7} {'passed':>7} "
            f"{'put':>5} {'time[s]':>8}"
        ]
        for r in self.modules:
            lines.append(
                f"{r.label:<20} {r.kind:<9} {r.events_seen:>7} "
                f"{r.events_passed:>7} {r.products_put:>5} {r.seconds:>8.3f}"
            )
        lines.append(
            f"events: {self.events_read} read, "
            f"{self.events_completed} completed the path"
        )
        return "\n".join(lines)


class Pipeline:
    """Runs events from a source through modules into a sink.

    Semantics follow art: modules execute in order; a False filter
    result ends the event's path (later modules never see it, and the
    sink persists nothing for it -- rejected events produce no output).
    """

    def __init__(self, modules: Sequence[Module], sink=None):
        if not modules:
            raise HEPnOSError("pipeline needs at least one module")
        labels = [m.label for m in modules]
        if len(set(labels)) != len(labels):
            raise HEPnOSError(f"duplicate module labels: {labels}")
        self.modules = list(modules)
        self.sink = sink
        self.reports = [
            ModuleReport(m.label, self._kind(m)) for m in self.modules
        ]

    @staticmethod
    def _kind(module: Module) -> str:
        if isinstance(module, Producer):
            return "producer"
        if isinstance(module, Filter):
            return "filter"
        if isinstance(module, Analyzer):
            return "analyzer"
        raise HEPnOSError(
            f"{module.label}: modules must be Producer, Filter, or Analyzer"
        )

    # -- event processing --------------------------------------------------

    def _process_one(self, event: EventContext, start: int = 0) -> bool:
        """Run one event through the module path; True if it survived."""
        for module, report in zip(self.modules[start:], self.reports[start:]):
            report.events_seen += 1
            event._current_module = module.label
            before = len(event.produced)
            start = time.monotonic()
            if isinstance(module, Producer):
                module.produce(event)
                passed = True
            elif isinstance(module, Filter):
                passed = bool(module.filter(event))
            else:
                module.analyze(event)
                passed = True
            report.seconds += time.monotonic() - start
            report.products_put += len(event.produced) - before
            if passed:
                report.events_passed += 1
            else:
                return False
        return True

    def run(self, source, comm=None) -> PipelineReport:
        """Process every event of ``source``.

        With ``comm`` (size > 1) and a source providing
        ``process_parallel``, events are distributed across ranks; the
        report then covers this rank's share.
        """
        report = PipelineReport(modules=self.reports)
        for module in self.modules:
            module.begin_job()
        start = time.monotonic()

        def handle(event: EventContext) -> None:
            report.events_read += 1
            if self._process_one(event):
                report.events_completed += 1
                if self.sink is not None:
                    self.sink.write(event)

        # Vectorized fast path: a leading CutFilter whose cut declares
        # its columns can be evaluated by a columnar source over whole
        # batches; only survivors run the rest of the module path.
        head = self.modules[0]
        vectorized = (
            isinstance(head, CutFilter)
            and hasattr(source, "supports_columnar")
            and source.supports_columnar(head)
        )
        if vectorized:
            head_report = self.reports[0]

            def observe(total: int, passed: int, seconds: float) -> None:
                report.events_read += total
                head_report.events_seen += total
                head_report.events_passed += passed
                head_report.seconds += seconds

            def handle_survivor(event: EventContext) -> None:
                if self._process_one(event, start=1):
                    report.events_completed += 1
                    if self.sink is not None:
                        self.sink.write(event)

            if comm is not None and comm.size > 1:
                source.comm = comm
            source.process_batches(head, handle_survivor, observe)
        elif comm is not None and comm.size > 1 and hasattr(
                source, "process_parallel"):
            source.comm = comm
            source.process_parallel(handle)
        else:
            for event in source.events():
                handle(event)

        for module in self.modules:
            module.end_job()
        if self.sink is not None:
            self.sink.close()
        report.seconds = time.monotonic() - start
        return report
