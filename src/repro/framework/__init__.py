"""A miniature HEP event-processing framework (the paper's future work).

Paper section VI: "Each HEP experiment uses a framework for
constructing its complicated event simulation and event processing
workflows.  The designs of these frameworks['] interfaces to their I/O
layers will need to change in many cases to take full advantage of a
distributed data store."  This package is that adaptation, demonstrated:
an art-style modular framework whose *physics code is identical* under
file-based and HEPnOS-based I/O -- only the source/sink changes.

- modules: :class:`Producer` (adds products), :class:`Filter`
  (accepts/rejects events), :class:`Analyzer` (observes);
- :class:`EventContext` mediates product access and records provenance;
- sources: :class:`FileSource` (sequential file scan) and
  :class:`HEPnOSSource` (prefetched store iteration, optionally
  MPI-parallel through the ParallelEventProcessor);
- sinks: :class:`HEPnOSSink` (batched product writes) and
  :class:`MemorySink` (collect in memory);
- :class:`Pipeline` wires them together and reports per-module
  statistics.
"""

from repro.framework.modules import (
    Analyzer,
    CutFilter,
    EventContext,
    Filter,
    Module,
    Producer,
)
from repro.framework.pipeline import (
    ModuleReport,
    Pipeline,
    PipelineReport,
)
from repro.framework.io import (
    FileSource,
    HEPnOSSink,
    HEPnOSSource,
    MemorySink,
)

__all__ = [
    "Module",
    "Producer",
    "Filter",
    "CutFilter",
    "Analyzer",
    "EventContext",
    "Pipeline",
    "ModuleReport",
    "PipelineReport",
    "FileSource",
    "HEPnOSSource",
    "HEPnOSSink",
    "MemorySink",
]
