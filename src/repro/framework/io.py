"""Framework I/O: event sources and product sinks.

The physics modules never see which source/sink is configured -- that
is the interface boundary the paper says frameworks must introduce to
benefit from a data service.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.errors import ProductNotFound
from repro.framework.modules import EventContext
from repro.hepnos.options import PEPOptions
from repro.hepnos.product import product_type_name, vector_of
from repro.hepnos.write_batch import WriteBatch
from repro.nova.files import iter_file_events
from repro.nova.generator import table_to_slices


class FileSource:
    """Sequential scan over CAF-like files (the grid paradigm).

    Each file event yields its ``rec.slc`` rows as ``SliceData``
    objects under the standard product spec (``vector<nova.SliceData>``,
    label ``""`` by default).
    """

    def __init__(self, paths: Sequence[str], label: str = ""):
        self.paths = list(paths)
        self.label = label

    def events(self) -> Iterator[EventContext]:
        from repro.nova.datamodel import SliceData

        type_name = product_type_name(vector_of(SliceData))
        for path in self.paths:
            for triple, rows in iter_file_events(path):
                slices = table_to_slices(rows)

                def loader(tname, label, _slices=slices):
                    if tname == type_name and label == self.label:
                        return _slices
                    return None

                yield EventContext(triple, loader=loader)


class HEPnOSSource:
    """Prefetched iteration over a HEPnOS dataset.

    ``products`` lists (type, label) pairs to gang-load; with ``comm``
    the iteration is driven by the ParallelEventProcessor (collective
    over the communicator), otherwise it is sequential.
    """

    def __init__(self, datastore, dataset_path: str,
                 products: Sequence[Tuple[object, str]] = (),
                 comm=None, input_batch_size: int = 1024,
                 dispatch_batch_size: int = 64, columnar: bool = False):
        self.datastore = datastore
        self.dataset_path = dataset_path
        self.products = list(products)
        self.comm = comm
        self.input_batch_size = input_batch_size
        self.dispatch_batch_size = dispatch_batch_size
        #: opt-in: let a leading CutFilter with declared columns be
        #: evaluated over server-projected arrays (scan_columns)
        self.columnar = columnar

    def _context_for(self, stub) -> EventContext:
        def loader(tname, label):
            try:
                return stub.load(tname, label=label)
            except ProductNotFound:
                return None

        return EventContext(stub.triple(), loader=loader)

    def events(self) -> Iterator[EventContext]:
        """Sequential iteration (ignores ``comm``)."""
        from repro.hepnos.parallel_event_processor import (
            ParallelEventProcessor,
        )

        pep = ParallelEventProcessor(
            self.datastore, comm=None,
            options=PEPOptions(input_batch_size=self.input_batch_size),
            products=self.products,
        )
        dataset = self.datastore[self.dataset_path]
        for batch in pep._load_batches(pep._all_subruns(dataset)):
            for stub in batch:
                yield self._context_for(stub)

    def process_parallel(self, handle) -> object:
        """Collective mode: invoke ``handle(EventContext)`` on each
        event via the PEP; returns this rank's PEPStatistics."""
        from repro.hepnos.parallel_event_processor import (
            ParallelEventProcessor,
        )

        pep = ParallelEventProcessor(
            self.datastore, comm=self.comm,
            options=PEPOptions(
                input_batch_size=self.input_batch_size,
                dispatch_batch_size=self.dispatch_batch_size,
            ),
            products=self.products,
        )
        dataset = self.datastore[self.dataset_path]
        return pep.process(dataset, lambda stub: handle(self._context_for(stub)))

    # -- columnar fast path -------------------------------------------------

    def supports_columnar(self, cut_filter) -> bool:
        """Whether this source can vectorize ``cut_filter``.

        Requires the columnar opt-in, a cut with declared columns, and
        the filter's product spec to be the source's single prefetched
        spec (the projection covers exactly that product).
        """
        if not self.columnar or cut_filter.columns is None:
            return False
        if len(self.products) != 1:
            return False
        ptype, label = self.products[0]
        return (product_type_name(ptype)
                == product_type_name(cut_filter.product_type)
                and label == cut_filter.product_label)

    def process_batches(self, cut_filter, handle, observe=None) -> object:
        """Vectorized prefilter: evaluate ``cut_filter`` over projected
        columns, then invoke ``handle(EventContext)`` on survivors only.

        Batch semantics match the per-event filter exactly: an event
        survives iff any of its records passes the cut; events the
        server could not project are evaluated object-by-object from
        the shipped row-wise values; events without the product fail.
        ``observe(total, passed, seconds)`` reports each batch's
        prefilter accounting.  Collective over ``comm`` when set.
        """
        import time as _time

        import numpy as np

        from repro.hepnos.parallel_event_processor import (
            ParallelEventProcessor,
        )

        cut = cut_filter.cut
        fields = sorted(cut.columns)
        pep = ParallelEventProcessor(
            self.datastore,
            comm=self.comm if self.comm is not None
            and self.comm.size > 1 else None,
            options=PEPOptions(
                input_batch_size=self.input_batch_size,
                dispatch_batch_size=self.dispatch_batch_size,
                columnar_loads=True,
            ),
            products=self.products,
            columns=fields,
        )

        def handle_batch(batch):
            t0 = _time.monotonic()
            block = batch.block
            if block.rows:
                ev_pass = block.event_any(cut.mask(block.table))
            else:
                ev_pass = np.zeros(len(block), dtype=bool)
            raw_pass = {
                i: any(cut(record) for record in records)
                for i, records in block.raw.items()
            }
            survivors = [
                i for i in range(len(batch))
                if bool(ev_pass[i]) or raw_pass.get(i, False)
            ]
            seconds = _time.monotonic() - t0
            if observe is not None:
                observe(len(batch), len(survivors), seconds)
            for i in survivors:
                handle(self._context_for(batch.items[i]))

        dataset = self.datastore[self.dataset_path]
        return pep.process_batches(dataset, handle_batch)


class HEPnOSSink:
    """Persists produced products next to their event (batched)."""

    def __init__(self, datastore, dataset_path: str,
                 flush_threshold: int = 1024):
        self.datastore = datastore
        self.dataset = datastore[dataset_path]
        self.batch = WriteBatch(datastore, flush_threshold=flush_threshold)
        self.products_written = 0

    def write(self, event: EventContext) -> None:
        handle = (self.dataset.run(event.run)
                  .subrun(event.subrun)
                  .event(event.event))
        for (tname, label), obj in event.produced.items():
            handle.store(obj, label=label, type_name=tname, batch=self.batch)
            self.products_written += 1

    def close(self) -> None:
        self.batch.close()


class MemorySink:
    """Collects produced products in memory (tests and small jobs)."""

    def __init__(self):
        self.records: dict[tuple, dict] = {}

    def write(self, event: EventContext) -> None:
        if event.produced:
            self.records[event.triple] = event.produced

    def close(self) -> None:
        pass
