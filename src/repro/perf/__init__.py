"""Performance models reproducing the paper's evaluation figures.

The models run the two workflows on the :mod:`repro.sim` platform
simulator and report the paper's metric -- slices processed per second
between the first process's start and the last one's finish.

- :mod:`repro.perf.workload` -- the evaluation datasets (1929/3858/7716
  files; 4.36M/8.72M/17.44M events) and byte-size model;
- :mod:`repro.perf.filebased` -- the traditional workflow model: block
  decomposition, per-block CAFAna spawn, PFS reads, sequential scans;
- :mod:`repro.perf.hepnos_model` -- the HEPnOS service model: readers
  pulling input batches (16384 events) from event/product databases,
  workers consuming dispatch batches (64 events), in-memory or
  LSM (RocksDB-like) backends;
- :mod:`repro.perf.experiments` -- the Figure 2 / Figure 3 sweeps and
  their shape checks.
"""

from repro.perf.workload import DatasetSpec, SMALL, MEDIUM, LARGE, CostModel
from repro.perf.filebased import FileBasedModel, FileBasedParams
from repro.perf.hepnos_model import HEPnOSModel, HEPnOSParams
from repro.perf.ingest_model import IngestModel, IngestParams
from repro.perf.experiments import (
    RunRecord,
    run_strong_scaling,
    run_dataset_sweep,
    run_weak_scaling,
    check_figure2_shape,
    check_figure3_shape,
    format_records,
)

__all__ = [
    "DatasetSpec",
    "SMALL",
    "MEDIUM",
    "LARGE",
    "CostModel",
    "FileBasedModel",
    "FileBasedParams",
    "HEPnOSModel",
    "HEPnOSParams",
    "IngestModel",
    "IngestParams",
    "RunRecord",
    "run_strong_scaling",
    "run_dataset_sweep",
    "run_weak_scaling",
    "check_figure2_shape",
    "check_figure3_shape",
    "format_records",
]
