"""Discrete-event model of the traditional file-based workflow.

Mechanics modeled (paper section IV-A):

- the file list is decomposed into blocks; each block is claimed by the
  next idle process (pull pipelining via a shared index);
- claiming a block spawns an independent CAFAna routine execution --
  a fixed startup cost (container + framework initialization);
- each file costs a PFS metadata op, a PFS read of its bytes, then a
  sequential scan: (decode + select) per slice on one core;
- a process handles one file at a time; parallelism is bounded by
  ``min(processes, remaining files)`` -- the core-starvation effect
  behind Figure 3's small-dataset points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perf.workload import CostModel, DatasetSpec
from repro.sim.engine import Simulator, Timeout
from repro.sim.platform import ParallelFileSystem, PlatformConfig, THETA


@dataclass(frozen=True)
class FileBasedParams:
    """Knobs of the traditional-workflow model."""

    #: processes started per node (the paper uses up to all 64 cores)
    procs_per_node: int = 64
    #: CAFAna routine spawn + initialization per block [s]
    block_spawn_time: float = 15.0
    #: per-file event counts spread (lognormal sigma)
    file_size_spread: float = 0.35


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    system: str
    nodes: int
    dataset: str
    wall_seconds: float
    throughput: float
    busy_processes: int = 0
    total_processes: int = 0
    #: optional per-resource busy fractions (who was the bottleneck)
    utilization: dict = None

    @property
    def core_utilization(self) -> float:
        if not self.total_processes:
            return 0.0
        return self.busy_processes / self.total_processes


class FileBasedModel:
    """Simulates one run of the traditional workflow."""

    def __init__(self, params: FileBasedParams = FileBasedParams(),
                 costs: CostModel = CostModel(),
                 platform: PlatformConfig = THETA):
        self.params = params
        self.costs = costs
        self.platform = platform

    def simulate(self, nodes: int, dataset: DatasetSpec,
                 seed: int = 0, jitter: float = 0.0) -> SimResult:
        sim = Simulator()
        pfs = ParallelFileSystem(sim, self.platform)
        rng = np.random.default_rng(seed + 7_777)
        t_slice = (self.costs.t_select + self.costs.t_file_decode)
        if jitter:
            t_slice *= 1.0 + rng.normal(0.0, jitter)

        file_events = dataset.file_event_counts(
            spread=self.params.file_size_spread, seed=seed
        )
        slices_per_event = dataset.slices_per_event
        num_procs = nodes * self.params.procs_per_node
        # Best-practice configuration (the paper tunes this per run):
        # one block per process when possible, so spawn cost amortizes
        # over the whole per-process file share.
        files_per_block = max(1, len(file_events) // num_procs)
        blocks = [
            file_events[i : i + files_per_block]
            for i in range(0, len(file_events), files_per_block)
        ]
        next_block = {"index": 0}
        busy = {"count": 0}

        def process_body():
            worked = False
            while True:
                index = next_block["index"]
                if index >= len(blocks):
                    break
                next_block["index"] = index + 1
                worked = True
                # Spawn the CAFAna routine for this block.
                yield Timeout(self.params.block_spawn_time)
                for events in blocks[index]:
                    nbytes = self.costs.file_bytes(dataset, float(events))
                    yield from pfs.read_file(nbytes)
                    nslices = events * slices_per_event
                    yield Timeout(nslices * t_slice)
            if worked:
                busy["count"] += 1

        for _ in range(min(num_procs, len(blocks))):
            sim.process(process_body(), name="grid-proc")
        wall = sim.run()
        return SimResult(
            system="filebased",
            nodes=nodes,
            dataset=dataset.name,
            wall_seconds=wall,
            throughput=dataset.total_slices / wall if wall > 0 else 0.0,
            busy_processes=busy["count"],
            total_processes=num_procs,
        )
