"""The paper's evaluation sweeps and their shape checks.

- :func:`run_strong_scaling` regenerates Figure 2: throughput vs nodes
  for the traditional workflow and HEPnOS with in-memory and LSM
  backends, on the largest sample;
- :func:`run_dataset_sweep` regenerates Figure 3: throughput vs dataset
  size at a fixed allocation;
- :func:`run_weak_scaling` is the A-weak ablation: dataset grows with
  the allocation;
- the ``check_*`` functions encode the paper's qualitative claims and
  are asserted by the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.perf.filebased import FileBasedModel, FileBasedParams, SimResult
from repro.perf.hepnos_model import HEPnOSModel, HEPnOSParams
from repro.perf.workload import LARGE, MEDIUM, SMALL, CostModel, DatasetSpec

SYSTEMS = ("filebased", "hepnos-mem", "hepnos-lsm")
#: Figure 2's x-axis.
NODE_COUNTS = (16, 32, 64, 128, 256)


@dataclass(frozen=True)
class RunRecord:
    """One dot on a figure."""

    system: str
    nodes: int
    dataset: str
    repeat: int
    wall_seconds: float
    throughput: float


def _simulate(system: str, nodes: int, dataset: DatasetSpec, seed: int,
              jitter: float,
              costs: CostModel,
              fb_params: FileBasedParams,
              hp_params: HEPnOSParams) -> SimResult:
    if system == "filebased":
        return FileBasedModel(fb_params, costs).simulate(
            nodes, dataset, seed=seed, jitter=jitter
        )
    if system == "hepnos-mem":
        return HEPnOSModel(hp_params, costs).simulate(
            nodes, dataset, backend="map", seed=seed, jitter=jitter
        )
    if system == "hepnos-lsm":
        return HEPnOSModel(hp_params, costs).simulate(
            nodes, dataset, backend="lsm", seed=seed, jitter=jitter
        )
    raise ValueError(f"unknown system {system!r}")


def _sweep(points, repeats: int, jitter: float, costs, fb_params, hp_params
           ) -> list[RunRecord]:
    records = []
    for system, nodes, dataset in points:
        for repeat in range(repeats):
            result = _simulate(system, nodes, dataset, seed=repeat,
                               jitter=jitter if repeat else 0.0,
                               costs=costs, fb_params=fb_params,
                               hp_params=hp_params)
            records.append(RunRecord(
                system=system, nodes=nodes, dataset=dataset.name,
                repeat=repeat, wall_seconds=result.wall_seconds,
                throughput=result.throughput,
            ))
    return records


def run_strong_scaling(
    node_counts: Sequence[int] = NODE_COUNTS,
    dataset: DatasetSpec = LARGE,
    systems: Sequence[str] = SYSTEMS,
    repeats: int = 3,
    jitter: float = 0.02,
    costs: CostModel = CostModel(),
    fb_params: FileBasedParams = FileBasedParams(),
    hp_params: HEPnOSParams = HEPnOSParams(),
) -> list[RunRecord]:
    """Figure 2: strong scaling on the largest sample."""
    points = [(system, nodes, dataset)
              for system in systems for nodes in node_counts]
    return _sweep(points, repeats, jitter, costs, fb_params, hp_params)


def run_dataset_sweep(
    nodes: int = 128,
    datasets: Sequence[DatasetSpec] = (SMALL, MEDIUM, LARGE),
    systems: Sequence[str] = SYSTEMS,
    repeats: int = 3,
    jitter: float = 0.02,
    costs: CostModel = CostModel(),
    fb_params: FileBasedParams = FileBasedParams(),
    hp_params: HEPnOSParams = HEPnOSParams(),
) -> list[RunRecord]:
    """Figure 3: throughput vs dataset size at a fixed allocation."""
    points = [(system, nodes, dataset)
              for system in systems for dataset in datasets]
    return _sweep(points, repeats, jitter, costs, fb_params, hp_params)


def run_weak_scaling(
    node_counts: Sequence[int] = (16, 32, 64, 128),
    events_per_node: Optional[int] = None,
    systems: Sequence[str] = ("hepnos-mem", "hepnos-lsm"),
    repeats: int = 1,
    jitter: float = 0.0,
    costs: CostModel = CostModel(),
    fb_params: FileBasedParams = FileBasedParams(),
    hp_params: HEPnOSParams = HEPnOSParams(),
) -> list[RunRecord]:
    """A-weak: the per-node dataset share stays constant."""
    if events_per_node is None:
        events_per_node = LARGE.total_events // max(node_counts)
    points = []
    for system in systems:
        for nodes in node_counts:
            factor = nodes * events_per_node / LARGE.total_events
            points.append((system, nodes, LARGE.scaled(factor)))
    return _sweep(points, repeats, jitter, costs, fb_params, hp_params)


# -- aggregation and checks ---------------------------------------------------


def mean_throughput(records: Sequence[RunRecord], system: str,
                    nodes: Optional[int] = None,
                    dataset: Optional[str] = None) -> float:
    values = [
        r.throughput for r in records
        if r.system == system
        and (nodes is None or r.nodes == nodes)
        and (dataset is None or r.dataset == dataset)
    ]
    if not values:
        raise ValueError(f"no records for {system} nodes={nodes} ds={dataset}")
    return sum(values) / len(values)


def check_figure2_shape(records: Sequence[RunRecord],
                        node_counts: Sequence[int] = NODE_COUNTS) -> dict:
    """The paper's Figure 2 claims, as named booleans."""
    checks = {}
    # 1. HEPnOS (both backends) beats file-based at every node count.
    checks["hepnos_superior_everywhere"] = all(
        mean_throughput(records, "hepnos-mem", n)
        > mean_throughput(records, "filebased", n)
        and mean_throughput(records, "hepnos-lsm", n)
        > mean_throughput(records, "filebased", n)
        for n in node_counts
    )
    # 2. mem ~ lsm at small scale (<= 32 nodes): within 20%.
    small = [n for n in node_counts if n <= 32]
    checks["lsm_matches_mem_at_small_scale"] = all(
        mean_throughput(records, "hepnos-lsm", n)
        > 0.8 * mean_throughput(records, "hepnos-mem", n)
        for n in small
    )
    # 3. the gap opens with node count and reaches ~2x at the largest.
    largest = max(node_counts)
    ratio_large = (mean_throughput(records, "hepnos-mem", largest)
                   / mean_throughput(records, "hepnos-lsm", largest))
    checks["mem_2x_lsm_at_largest"] = 1.6 <= ratio_large <= 2.6
    ratios = [
        mean_throughput(records, "hepnos-mem", n)
        / mean_throughput(records, "hepnos-lsm", n)
        for n in node_counts
    ]
    checks["gap_grows_with_scale"] = all(
        ratios[i] <= ratios[i + 1] * 1.05 for i in range(len(ratios) - 1)
    )
    # 4. in-memory strong-scaling efficiency ~85% at 128 nodes (vs 16).
    if 128 in node_counts and 16 in node_counts:
        eff = (mean_throughput(records, "hepnos-mem", 128)
               / mean_throughput(records, "hepnos-mem", 16)) / (128 / 16)
        checks["mem_efficiency_at_128"] = 0.75 <= eff <= 0.95
        checks["mem_efficiency_value"] = eff
    # 5. file-based flattens once cores outnumber files (past 64 nodes).
    if 128 in node_counts and max(node_counts) > 128:
        gain = (mean_throughput(records, "filebased", max(node_counts))
                / mean_throughput(records, "filebased", 128))
        checks["filebased_flattens_past_128"] = gain < 1.15
    return checks


def check_figure3_shape(records: Sequence[RunRecord],
                        nodes: int = 128) -> dict:
    """The paper's Figure 3 claims."""
    checks = {}
    fb_small = mean_throughput(records, "filebased", nodes, "small")
    fb_large = mean_throughput(records, "filebased", nodes, "large")
    hp_small = mean_throughput(records, "hepnos-mem", nodes, "small")
    hp_large = mean_throughput(records, "hepnos-mem", nodes, "large")
    # 1. file-based is especially poor on small datasets (core starvation).
    checks["filebased_poor_on_small"] = fb_small < 0.55 * fb_large
    # 2. the effect is "greatly lessened" for HEPnOS (paper's wording):
    #    its relative drop is far smaller than the file-based one.
    hp_drop = hp_small / hp_large
    fb_drop = fb_small / fb_large
    checks["hepnos_effect_greatly_lessened"] = (
        hp_drop > fb_drop + 0.15 and hp_drop > 0.5
    )
    # 3. HEPnOS wins on every dataset size.
    checks["hepnos_superior"] = all(
        mean_throughput(records, "hepnos-mem", nodes, ds)
        > mean_throughput(records, "filebased", nodes, ds)
        for ds in ("small", "medium", "large")
    )
    return checks


def format_records(records: Sequence[RunRecord], group_by_dataset: bool = False
                   ) -> str:
    """A printable table of mean throughput per (system, x-axis point)."""
    from collections import defaultdict

    groups: dict = defaultdict(list)
    for r in records:
        key = (r.system, r.dataset if group_by_dataset else r.nodes)
        groups[key].append(r.throughput)
    lines = []
    x_label = "dataset" if group_by_dataset else "nodes"
    lines.append(f"{'system':<14} {x_label:>8} {'slices/s':>14} {'runs':>5}")
    for (system, x), values in sorted(groups.items(), key=lambda kv: (
            kv[0][0], str(kv[0][1]))):
        mean = sum(values) / len(values)
        lines.append(f"{system:<14} {x!s:>8} {mean:>14.0f} {len(values):>5}")
    return "\n".join(lines)
