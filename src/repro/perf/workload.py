"""The evaluation datasets and the shared cost model.

Dataset sizes are the paper's (section IV-D): the base beam sample is
1929 files / 4,359,414 events / 17,878,347 slices, replicated 2x and 4x
for the larger samples.  The byte-size model assumes ~600 reconstructed
quantities of 4 bytes per slice, consistent with the NOvA CAF record.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import fnv1a_64, mix64


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation sample."""

    name: str
    num_files: int
    total_events: int
    total_slices: int

    @property
    def slices_per_event(self) -> float:
        return self.total_slices / self.total_events

    @property
    def events_per_file(self) -> float:
        return self.total_events / self.num_files

    def scaled(self, factor: float) -> "DatasetSpec":
        """A proportionally smaller/larger copy (for quick runs)."""
        return DatasetSpec(
            name=f"{self.name}x{factor:g}",
            num_files=max(1, round(self.num_files * factor)),
            total_events=max(1, round(self.total_events * factor)),
            total_slices=max(1, round(self.total_slices * factor)),
        )

    def file_event_counts(self, spread: float = 0.35, seed: int = 0
                          ) -> np.ndarray:
        """Heavy-tailed per-file event counts (mean preserved)."""
        rng = np.random.default_rng(
            mix64(fnv1a_64(f"{self.name}:{seed}".encode()))
        )
        if spread <= 0:
            counts = np.full(self.num_files, self.events_per_file)
        else:
            counts = rng.lognormal(-0.5 * spread**2, spread, self.num_files)
            counts *= self.events_per_file
        # Rescale proportionally to the exact total, then spread the
        # integer residual one event at a time (dumping it on a single
        # file would fabricate an artificial monster file).
        counts *= self.total_events / counts.sum()
        counts = np.maximum(1, counts.round().astype(np.int64))
        diff = self.total_events - int(counts.sum())
        step = 1 if diff > 0 else -1
        i = 0
        while diff != 0:
            if counts[i % self.num_files] + step >= 1:
                counts[i % self.num_files] += step
                diff -= step
            i += 1
        return counts


#: The paper's three samples.
SMALL = DatasetSpec("small", 1929, 4_359_414, 17_878_347)
MEDIUM = DatasetSpec("medium", 3858, 8_718_828, 2 * 17_878_347)
LARGE = DatasetSpec("large", 7716, 17_437_656, 4 * 17_878_347)


@dataclass(frozen=True)
class CostModel:
    """Per-slice and per-structure costs shared by both workflow models.

    Calibrated so the simulated shapes match the paper's qualitative
    claims (see DESIGN.md section 3); absolute values are plausible for
    KNL-class cores but are NOT fitted to the paper's absolute numbers.
    """

    #: candidate-selection CPU time per slice [s] (KNL core)
    t_select: float = 0.9e-3
    #: serialized slice record size [B] (~600 quantities x 4 B + framing)
    bytes_per_slice: float = 2600.0
    #: file-based extra decode/IO time per slice (ROOT/CAF deserialization)
    t_file_decode: float = 0.5e-3
    #: HEPnOS client-side deserialization per slice
    t_hepnos_decode: float = 0.1e-3

    def event_bytes(self, dataset: DatasetSpec) -> float:
        return self.bytes_per_slice * dataset.slices_per_event

    def file_bytes(self, dataset: DatasetSpec, events: float) -> float:
        return self.bytes_per_slice * dataset.slices_per_event * events
