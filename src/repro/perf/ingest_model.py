"""Discrete-event model of the ingest phase (HDF2HEPnOS DataLoader).

The paper (section III-B): the DataLoader "can then be compiled and run
in parallel to ingest a number of files.  It becomes the first step of
an HEP workflow, and the only step whose scalability is constrained by
the number of files."

Modeled per file: a PFS read of the file's bytes, a columnar-to-object
transform on one core, then batched writes shipped to the owning
servers (bulk transfer through the server NIC; the LSM backend also
pays WAL+memtable-flush SSD writes).  Loader ranks pull files from a
shared list; parallelism is ``min(ranks, remaining files)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.perf.filebased import SimResult
from repro.perf.workload import CostModel, DatasetSpec
from repro.sim.engine import Simulator, Timeout
from repro.sim.platform import NodeModel, ParallelFileSystem, PlatformConfig, THETA


@dataclass(frozen=True)
class IngestParams:
    """Knobs of the ingest model."""

    #: loader MPI ranks per client node
    ranks_per_node: int = 16
    #: server share of the allocation (as in the read phase)
    server_node_ratio: int = 8
    #: per-row transform cost (regroup columns into objects) [s]
    t_transform: float = 20e-6
    #: write batch size in events (WriteBatch flush threshold)
    write_batch_events: int = 4096
    #: LSM write amplification (WAL + flush)
    lsm_write_amp: float = 2.0


class IngestModel:
    """Simulates the parallel ingest of a file set."""

    def __init__(self, params: IngestParams = IngestParams(),
                 costs: CostModel = CostModel(),
                 platform: PlatformConfig = THETA):
        self.params = params
        self.costs = costs
        self.platform = platform

    def simulate(self, nodes: int, dataset: DatasetSpec, backend: str = "map",
                 seed: int = 0) -> SimResult:
        if backend not in ("map", "lsm"):
            raise SimulationError(f"unknown backend {backend!r}")
        if nodes < 2:
            raise SimulationError("need at least one server and one client node")
        params = self.params
        server_count = max(1, nodes // params.server_node_ratio)
        client_nodes = nodes - server_count

        sim = Simulator()
        pfs = ParallelFileSystem(sim, self.platform)
        servers = [
            NodeModel(sim, self.platform, name=f"server{i}",
                      with_ssd=(backend == "lsm"))
            for i in range(server_count)
        ]
        file_events = dataset.file_event_counts(seed=seed)
        next_file = {"index": 0}
        busy = {"count": 0}
        slices_per_event = dataset.slices_per_event
        num_ranks = client_nodes * params.ranks_per_node
        rng = np.random.default_rng(seed + 99)

        def loader_rank(rank: int):
            worked = False
            while True:
                index = next_file["index"]
                if index >= len(file_events):
                    break
                next_file["index"] = index + 1
                worked = True
                events = float(file_events[index])
                nbytes = self.costs.file_bytes(dataset, events)
                # 1. read the file from the PFS
                yield from pfs.read_file(nbytes)
                # 2. transform rows into products (one core)
                rows = events * slices_per_event
                yield Timeout(rows * params.t_transform)
                # 3. ship write batches to the servers (spread by
                #    placement hashing -- approximate round-robin)
                remaining = events
                while remaining > 0:
                    batch = min(params.write_batch_events, remaining)
                    remaining -= batch
                    batch_bytes = self.costs.event_bytes(dataset) * batch
                    server = servers[int(rng.integers(len(servers)))]
                    yield from server.nic.read(batch_bytes)
                    if backend == "lsm":
                        yield from server.ssd.read(
                            batch_bytes * params.lsm_write_amp
                        )
                    yield Timeout(self.platform.rpc_overhead)
            if worked:
                busy["count"] += 1

        for rank in range(min(num_ranks, len(file_events))):
            sim.process(loader_rank(rank), name=f"loader{rank}")
        wall = sim.run()
        return SimResult(
            system=f"ingest-{'mem' if backend == 'map' else 'lsm'}",
            nodes=nodes,
            dataset=dataset.name,
            wall_seconds=wall,
            throughput=dataset.total_events / wall if wall > 0 else 0.0,
            busy_processes=busy["count"],
            total_processes=num_ranks,
        )
