"""Discrete-event model of the HEPnOS-based workflow.

Mechanics modeled (paper sections II-D and IV-B/IV-D):

- one of every 8 nodes runs the HEPnOS service; the rest run client
  ranks;
- the dataset's events live in 8 event databases per server process,
  pre-ingested (the paper measures the read side only);
- *readers* (one per event database) pull input batches of 16384
  events: one RPC to the owning server, which spends CPU gathering the
  batch (and, with the LSM backend, SSD time reading it), then streams
  the batch back through its NIC;
- readers chop input batches into dispatch batches of 64 events pushed
  to a shared queue from which all worker nodes pull -- the fine-grained
  load-balancing stage;
- worker nodes consume a dispatch batch using all their cores
  (deserialize + select per slice);
- fixed per-run phases: service connection/setup for both backends,
  plus a cold-read phase for the LSM backend (SSTable index loads and
  block-cache warm-up), which is what erodes its throughput when runs
  get short at high node counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.perf.filebased import SimResult
from repro.perf.workload import CostModel, DatasetSpec
from repro.sim.engine import Simulator, Timeout
from repro.sim.network import DragonflyConfig, DragonflyNetwork
from repro.sim.platform import NodeModel, PlatformConfig, THETA
from repro.sim.resources import Resource, Store


@dataclass(frozen=True)
class HEPnOSParams:
    """Knobs of the HEPnOS-workflow model (paper IV-D values)."""

    #: one server node per this many nodes
    server_node_ratio: int = 8
    #: event databases per server node
    event_dbs_per_server: int = 8
    #: events per input batch (reader <- server)
    input_batch_size: int = 16384
    #: events per dispatch batch (worker <- queue)
    dispatch_batch_size: int = 64
    #: provider parallelism per server node
    providers_per_server: int = 8
    #: per-key server CPU time (lookup + gather) [s]
    t_server_per_key: float = 2e-6
    #: fixed client/service setup time per run [s]
    setup_time: float = 2.2
    #: LSM only: cold-read phase (index loads, cache warm-up) [s]
    lsm_cold_time: float = 7.0
    #: LSM read amplification on the SSD
    lsm_read_amp: float = 2.0


class HEPnOSModel:
    """Simulates one run of the HEPnOS selection workflow."""

    def __init__(self, params: HEPnOSParams = HEPnOSParams(),
                 costs: CostModel = CostModel(),
                 platform: PlatformConfig = THETA):
        self.params = params
        self.costs = costs
        self.platform = platform

    def simulate(self, nodes: int, dataset: DatasetSpec, backend: str = "map",
                 seed: int = 0, jitter: float = 0.0,
                 topology: Optional[DragonflyConfig] = None,
                 server_placement: str = "spread",
                 adaptive_routing: bool = True) -> SimResult:
        """Simulate one run.

        Default transport is the flat per-NIC model.  Passing a
        ``topology`` routes every bulk transfer through a dragonfly
        interconnect instead; ``server_placement`` then chooses where
        the service nodes sit: ``"spread"`` (one per 8, round-robin over
        groups -- the paper's deployment) or ``"packed"`` (all service
        nodes in the lowest-numbered groups).
        """
        if backend not in ("map", "lsm"):
            raise SimulationError(f"unknown backend {backend!r}")
        if server_placement not in ("spread", "packed"):
            raise SimulationError(f"unknown placement {server_placement!r}")
        params = self.params
        if nodes < 2:
            raise SimulationError("need at least one server and one client node")
        server_nodes = max(1, nodes // params.server_node_ratio)
        client_nodes = nodes - server_nodes

        sim = Simulator()
        rng = np.random.default_rng(seed + 13_131)
        t_slice = self.costs.t_select + self.costs.t_hepnos_decode
        if jitter:
            t_slice *= 1.0 + rng.normal(0.0, jitter)

        network: Optional[DragonflyNetwork] = None
        server_ids: list[int] = []
        reader_nodes: list[int] = []
        if topology is not None:
            if topology.total_nodes < nodes:
                raise SimulationError(
                    f"topology has {topology.total_nodes} nodes < {nodes}"
                )
            network = DragonflyNetwork(sim, topology, seed=seed)
            if server_placement == "spread":
                server_ids = [i * params.server_node_ratio
                              for i in range(server_nodes)]
            else:
                server_ids = list(range(server_nodes))
            client_ids = [i for i in range(nodes) if i not in set(server_ids)]
            # Readers (one per event database) run on client nodes,
            # assigned round-robin.
            total_dbs = server_nodes * params.event_dbs_per_server
            reader_nodes = [client_ids[i % len(client_ids)]
                            for i in range(total_dbs)]

        servers = [
            NodeModel(sim, self.platform, name=f"server{i}",
                      with_ssd=(backend == "lsm"))
            for i in range(server_nodes)
        ]
        # Provider parallelism: RPCs to one server share its providers.
        provider_pools = [
            Resource(sim, capacity=params.providers_per_server,
                     name=f"server{i}-providers")
            for i in range(server_nodes)
        ]

        num_dbs = server_nodes * params.event_dbs_per_server
        # Spread events over databases (placement is uniform by hashing).
        events_per_db = [dataset.total_events // num_dbs] * num_dbs
        for i in range(dataset.total_events % num_dbs):
            events_per_db[i] += 1

        slices_per_event = dataset.slices_per_event
        event_bytes = self.costs.event_bytes(dataset)
        queue = Store(sim, name="dispatch")
        done = {"readers": 0}

        def reader_body(db_index: int):
            # Setup phase (connection, PEP initialization).
            yield Timeout(params.setup_time)
            if backend == "lsm":
                yield Timeout(params.lsm_cold_time)
            server_index = db_index % server_nodes
            server = servers[server_index]
            providers = provider_pools[server_index]
            remaining = events_per_db[db_index]
            while remaining > 0:
                batch = min(params.input_batch_size, remaining)
                remaining -= batch
                nbytes = batch * event_bytes
                # RPC + server-side gather under one provider.
                yield providers.request()
                try:
                    yield Timeout(self.platform.rpc_overhead)
                    yield from server.compute(batch * params.t_server_per_key)
                    if backend == "lsm":
                        yield from server.ssd.read(
                            nbytes * params.lsm_read_amp
                        )
                    # Memory copy into the response buffers.
                    yield Timeout(nbytes / self.platform.memory_bandwidth)
                finally:
                    providers.release()
                # Bulk transfer back: through the dragonfly when a
                # topology is modeled, else through the flat server NIC.
                if network is not None:
                    yield from network.send(
                        server_ids[server_index], reader_nodes[db_index],
                        nbytes, adaptive=adaptive_routing,
                    )
                else:
                    yield from server.nic.read(nbytes)
                    yield Timeout(self.platform.network_latency)
                # Chop into dispatch batches for the shared queue.
                for start in range(0, batch, params.dispatch_batch_size):
                    chunk = min(params.dispatch_batch_size, batch - start)
                    queue.put(chunk)
            done["readers"] += 1
            if done["readers"] == num_dbs:
                for _ in range(client_nodes):
                    queue.put(None)  # sentinel: no more work

        accounting = {"worker_busy": 0.0}

        def worker_body(node: NodeModel):
            yield Timeout(params.setup_time)
            while True:
                chunk = yield queue.get()
                if chunk is None:
                    return
                nslices = chunk * slices_per_event
                # All cores of the node chew on the dispatch batch.
                service = nslices * t_slice / self.platform.cores_per_node
                accounting["worker_busy"] += service
                yield Timeout(service)

        for db_index in range(num_dbs):
            sim.process(reader_body(db_index), name=f"reader{db_index}")
        for i in range(client_nodes):
            node = NodeModel(sim, self.platform, name=f"client{i}")
            sim.process(worker_body(node), name=f"worker{i}")
        wall = sim.run()
        utilization = {
            "worker_compute": (
                accounting["worker_busy"] / (client_nodes * wall)
                if wall > 0 else 0.0
            ),
            "server_cpu": sum(
                s.cores.utilization(wall) for s in servers
            ) / len(servers),
            "server_nic": sum(
                s.nic.resource.utilization(wall) for s in servers
            ) / len(servers),
        }
        if backend == "lsm":
            utilization["server_ssd"] = sum(
                s.ssd.resource.utilization(wall) for s in servers
            ) / len(servers)
        return SimResult(
            system=f"hepnos-{'mem' if backend == 'map' else 'lsm'}",
            nodes=nodes,
            dataset=dataset.name,
            wall_seconds=wall,
            throughput=dataset.total_slices / wall if wall > 0 else 0.0,
            busy_processes=client_nodes,
            total_processes=client_nodes,
            utilization=utilization,
        )
