"""repro: a Python reproduction of HEPnOS (IPDPS 2023).

HEPnOS is a distributed data service for High Energy Physics analysis,
built from the Mochi suite of composable data-service components.  This
package reimplements the full stack in Python:

- :mod:`repro.utils`      -- sorted maps, consistent hashing, key codecs.
- :mod:`repro.serial`     -- Boost-style binary serialization archives.
- :mod:`repro.argobots`   -- cooperative user-level-thread runtime.
- :mod:`repro.mercury`    -- RPC engine with bulk (RDMA-like) transfers.
- :mod:`repro.margo`     -- glue binding RPC handlers to ULT pools.
- :mod:`repro.bedrock`    -- JSON-configured service bootstrapping.
- :mod:`repro.yokan`      -- key-value store component with multiple backends.
- :mod:`repro.broker`     -- multi-tenant admission control and fair share.
- :mod:`repro.hepnos`     -- the HEPnOS data model and client library.
- :mod:`repro.minimpi`    -- an in-process MPI used by the client workflows.
- :mod:`repro.hdf5lite`   -- hierarchical columnar files (HDF5 stand-in).
- :mod:`repro.nova`       -- synthetic NOvA-like workload and CAFAna-style cuts.
- :mod:`repro.workflows`  -- the traditional and HEPnOS-based workflows.
- :mod:`repro.sim`        -- discrete-event HPC platform simulator.
- :mod:`repro.perf`       -- performance models reproducing the paper's figures.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
