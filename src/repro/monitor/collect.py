"""Collectors: attach metrics to live providers and fabrics."""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import KeyNotFound
from repro.mercury import Fabric
from repro.monitor.metrics import MetricRegistry
from repro.yokan.backend import Backend
from repro.yokan.provider import YokanProvider


class _InstrumentedBackend(Backend):
    """Transparent wrapper recording per-operation counts and latencies."""

    def __init__(self, inner: Backend, registry: MetricRegistry, name: str):
        super().__init__()
        self._inner = inner
        self._prefix = f"db.{name}"
        self._registry = registry
        self._ops = registry.counter(f"{self._prefix}.ops",
                                     "total operations")
        self._misses = registry.counter(f"{self._prefix}.misses",
                                        "KeyNotFound results")
        self._latency = registry.histogram(f"{self._prefix}.latency",
                                           "per-op latency [s]")
        registry.gauge(f"{self._prefix}.keys", "live keys",
                       sample_fn=lambda: len(inner))

    def _timed(self, fn, *args):
        self._ops.inc()
        start = time.monotonic()
        try:
            return fn(*args)
        except KeyNotFound:
            self._misses.inc()
            raise
        finally:
            self._latency.observe(time.monotonic() - start)

    # -- Backend API, delegated with timing --------------------------------

    def put(self, key, value):
        return self._timed(self._inner.put, key, value)

    def get(self, key):
        return self._timed(self._inner.get, key)

    def exists(self, key):
        return self._timed(self._inner.exists, key)

    def erase(self, key):
        return self._timed(self._inner.erase, key)

    def put_multi(self, pairs):
        pairs = list(pairs)
        self._ops.inc(len(pairs))
        start = time.monotonic()
        try:
            return self._inner.put_multi(pairs)
        finally:
            self._latency.observe(time.monotonic() - start)

    def get_multi(self, keys):
        keys = list(keys)
        self._ops.inc(len(keys))
        start = time.monotonic()
        try:
            return self._inner.get_multi(keys)
        finally:
            self._latency.observe(time.monotonic() - start)

    def list_keys(self, prefix=b"", start_after=b"", limit=0):
        return self._timed(self._inner.list_keys, prefix, start_after, limit)

    def __len__(self):
        return len(self._inner)

    def scan(self, start=b"", inclusive=True):
        return self._inner.scan(start, inclusive=inclusive)

    def flush(self):
        return self._inner.flush()

    def close(self):
        self._inner.close()
        super().close()

    @property
    def inner(self) -> Backend:
        return self._inner


class ProviderMonitor:
    """Instruments every database of a provider in place."""

    def __init__(self, provider: YokanProvider,
                 registry: Optional[MetricRegistry] = None):
        self.provider = provider
        self.registry = registry or MetricRegistry(
            f"provider-{provider.provider_id}"
        )
        for name in list(provider.databases):
            inner = provider.databases[name]
            if isinstance(inner, _InstrumentedBackend):
                continue
            provider.databases[name] = _InstrumentedBackend(
                inner, self.registry, name
            )

    def database_ops(self) -> dict[str, int]:
        """Total op count per database (hot-spot detection input)."""
        out = {}
        for name in self.provider.databases:
            metric_name = f"db.{name}.ops"
            if metric_name in self.registry:
                out[name] = self.registry[metric_name].value
        return out

    def snapshot(self) -> dict:
        return self.registry.snapshot()


def monitor_provider(provider: YokanProvider,
                     registry: Optional[MetricRegistry] = None
                     ) -> ProviderMonitor:
    """Convenience: attach a :class:`ProviderMonitor`."""
    return ProviderMonitor(provider, registry)


class FabricMonitor:
    """Samples fabric traffic counters into a registry's history."""

    def __init__(self, fabric: Fabric,
                 registry: Optional[MetricRegistry] = None):
        self.fabric = fabric
        self.registry = registry or MetricRegistry("fabric")
        stats = fabric.stats
        self.registry.gauge("fabric.rpc_count",
                            sample_fn=lambda: stats.rpc_count)
        self.registry.gauge("fabric.rpc_bytes",
                            sample_fn=lambda: stats.rpc_bytes)
        self.registry.gauge("fabric.bulk_bytes",
                            sample_fn=lambda: stats.bulk_bytes)
        self.registry.gauge("fabric.total_bytes",
                            sample_fn=lambda: stats.total_bytes)
        self.registry.gauge("fabric.dropped",
                            sample_fn=lambda: stats.dropped)

    def sample(self, timestamp: Optional[float] = None) -> dict:
        return self.registry.snapshot(timestamp)

    def bytes_per_rpc(self) -> float:
        stats = self.fabric.stats
        if stats.rpc_count == 0:
            return 0.0
        return stats.total_bytes / stats.rpc_count
