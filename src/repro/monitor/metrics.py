"""Metric primitives: counters, gauges, histograms, and their registry."""

from __future__ import annotations

import bisect
import threading
import time
from typing import Callable, Iterable, Optional

from repro.errors import ReproError


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ReproError("counters only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self._value}


class Gauge:
    """A value that can move in both directions, or be sampled lazily."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 sample_fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.help = help
        self._value = 0.0
        self._sample_fn = sample_fn
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        if self._sample_fn is not None:
            return float(self._sample_fn())
        return self._value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Latency histogram with fixed bucket bounds plus sum/count.

    Default buckets suit RPC latencies (microseconds to seconds).
    """

    kind = "histogram"

    DEFAULT_BOUNDS = (
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
    )

    def __init__(self, name: str, help: str = "",
                 bounds: Iterable[float] = DEFAULT_BOUNDS):
        self.name = name
        self.help = help
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ReproError("histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._n = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._n += 1

    def time(self):
        """Context manager observing the elapsed wall time."""
        return _Timer(self)

    @property
    def count(self) -> int:
        return self._n

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._n if self._n else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the q-th bucket."""
        if not 0.0 <= q <= 1.0:
            raise ReproError("quantile must be in [0, 1]")
        if self._n == 0:
            return 0.0
        target = q * self._n
        running = 0
        for idx, count in enumerate(self._counts):
            running += count
            if running >= target:
                if idx < len(self.bounds):
                    return self.bounds[idx]
                return float("inf")
        return float("inf")

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "count": self._n,
            "sum": self._sum,
            "mean": self.mean,
            "buckets": dict(zip(list(self.bounds) + ["inf"], self._counts)),
        }


class _Timer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self):
        self._start = time.monotonic()
        return self

    def __exit__(self, *exc):
        self._histogram.observe(time.monotonic() - self._start)


class MetricRegistry:
    """A named collection of metrics with snapshot history."""

    def __init__(self, name: str = "registry"):
        self.name = name
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()
        self._history: list[tuple[float, dict]] = []

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "",
              sample_fn: Optional[Callable[[], float]] = None) -> Gauge:
        return self._get_or_create(
            name, lambda: Gauge(name, help, sample_fn), Gauge
        )

    def histogram(self, name: str, help: str = "",
                  bounds=Histogram.DEFAULT_BOUNDS) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, bounds), Histogram
        )

    def _get_or_create(self, name: str, factory, expected_type):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, expected_type):
                raise ReproError(
                    f"metric {name!r} already exists with kind "
                    f"{metric.kind!r}"
                )
            return metric

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str):
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self, timestamp: Optional[float] = None) -> dict:
        """Capture all metric values; appended to the history."""
        stamp = timestamp if timestamp is not None else time.monotonic()
        data = {name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())}
        self._history.append((stamp, data))
        return data

    @property
    def history(self) -> list[tuple[float, dict]]:
        return list(self._history)

    def rate(self, name: str) -> float:
        """Per-second rate of a counter between the last two snapshots."""
        samples = [
            (stamp, data[name]["value"])
            for stamp, data in self._history
            if name in data and data[name]["kind"] == "counter"
        ]
        if len(samples) < 2:
            return 0.0
        (t0, v0), (t1, v1) = samples[-2], samples[-1]
        if t1 <= t0:
            return 0.0
        return (v1 - v0) / (t1 - t0)
