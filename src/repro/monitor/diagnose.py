"""The analysis pass: turn collected metrics into actionable findings.

This reproduces the role monitoring played in HEPnOS's development
(paper section V): the early performance problems it diagnosed led to
the batching and parallel-event-processing optimizations.  The checks
here detect exactly those classes of problem:

- **chatty clients** -- many RPCs, few bytes each: recommend WriteBatch
  / batched loads;
- **hot databases** -- operation counts skewed across databases:
  placement or workload imbalance;
- **slow tail** -- high p99/mean latency ratio on some database;
- **drops** -- fabric-level message drops (injection saturation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.monitor.collect import FabricMonitor, ProviderMonitor


@dataclass
class Finding:
    severity: str  # "info" | "warning"
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass
class DiagnosticReport:
    findings: list = field(default_factory=list)

    @property
    def warnings(self) -> list:
        return [f for f in self.findings if f.severity == "warning"]

    def has(self, code: str) -> bool:
        return any(f.code == code for f in self.findings)

    def __str__(self) -> str:
        if not self.findings:
            return "no findings"
        return "\n".join(str(f) for f in self.findings)


def diagnose(
    fabric_monitor: Optional[FabricMonitor] = None,
    provider_monitors: Sequence[ProviderMonitor] = (),
    small_rpc_bytes: float = 256.0,
    skew_threshold: float = 4.0,
    tail_threshold: float = 50.0,
) -> DiagnosticReport:
    """Analyze collected metrics and report findings."""
    report = DiagnosticReport()

    if fabric_monitor is not None:
        stats = fabric_monitor.fabric.stats
        if stats.rpc_count > 100:
            per_rpc = fabric_monitor.bytes_per_rpc()
            if per_rpc < small_rpc_bytes:
                report.findings.append(Finding(
                    "warning", "chatty-client",
                    f"{stats.rpc_count} RPCs averaging {per_rpc:.0f} B "
                    "each; use WriteBatch / batched product loads to "
                    "amortize per-RPC overhead",
                ))
            else:
                report.findings.append(Finding(
                    "info", "traffic",
                    f"{stats.rpc_count} RPCs, {per_rpc:.0f} B average",
                ))
        if stats.dropped:
            report.findings.append(Finding(
                "warning", "fabric-drops",
                f"{stats.dropped} messages dropped (injection bandwidth "
                "oversaturated); throttle concurrent bulk transfers",
            ))

    # Aggregate per-database op counts across providers.
    ops: dict[str, int] = {}
    for monitor in provider_monitors:
        for name, count in monitor.database_ops().items():
            ops[name] = ops.get(name, 0) + count
    loaded = {name: count for name, count in ops.items() if count > 0}
    if len(loaded) >= 2:
        mean = sum(loaded.values()) / len(loaded)
        hottest = max(loaded, key=loaded.get)
        if loaded[hottest] > skew_threshold * mean:
            report.findings.append(Finding(
                "warning", "hot-database",
                f"database {hottest!r} served {loaded[hottest]} ops "
                f"({loaded[hottest] / mean:.1f}x the mean); check "
                "placement keys or workload skew",
            ))
        else:
            report.findings.append(Finding(
                "info", "balance",
                f"{len(loaded)} active databases, hottest at "
                f"{loaded[hottest] / mean:.1f}x the mean load",
            ))

    # Latency tails.
    for monitor in provider_monitors:
        registry = monitor.registry
        for name in registry.names():
            if not name.endswith(".latency"):
                continue
            histogram = registry[name]
            if histogram.count < 10 or histogram.mean <= 0:
                continue
            p99 = histogram.quantile(0.99)
            if p99 != float("inf") and p99 > tail_threshold * histogram.mean:
                report.findings.append(Finding(
                    "warning", "slow-tail",
                    f"{name}: p99 {p99:.2g}s vs mean "
                    f"{histogram.mean:.2g}s",
                ))
    return report
