"""Monitoring and performance diagnostics (the SymbioMon stand-in).

The paper (section V) credits a composable monitoring service [5] with
diagnosing early HEPnOS performance problems, which led to the batching
and parallel-event-processing optimizations.  This package provides the
same capability for this stack:

- :class:`MetricRegistry` -- counters, gauges, and histogram metrics
  with time-series snapshots;
- :mod:`repro.monitor.tracing` -- cross-layer distributed tracing:
  spans that follow one operation client -> server across the RPC
  boundary, with Chrome-trace export and critical-path analysis;
- :class:`ProviderMonitor` -- wraps a Yokan provider's databases to
  record per-operation counts and latencies transparently;
- :class:`FabricMonitor` -- samples fabric traffic into a time series;
- :func:`diagnose` -- the analysis pass: finds hot databases, skewed
  placements, and chatty (unbatched) clients, and says so.

The collectors are loaded lazily (PEP 562): :mod:`repro.mercury`
imports :mod:`repro.monitor.tracing` on its hot path, and an eager
import of :mod:`repro.monitor.collect` here would close an import
cycle back through the mercury package.
"""

from repro.monitor.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.monitor import tracing
from repro.monitor.tracing import (
    Span,
    SpanContext,
    TraceCollector,
    Tracer,
    install_tracer,
    trace_session,
    uninstall_tracer,
)

_LAZY = {
    "FabricMonitor": "repro.monitor.collect",
    "ProviderMonitor": "repro.monitor.collect",
    "monitor_provider": "repro.monitor.collect",
    "DiagnosticReport": "repro.monitor.diagnose",
    "diagnose": "repro.monitor.diagnose",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "Span",
    "SpanContext",
    "TraceCollector",
    "Tracer",
    "install_tracer",
    "trace_session",
    "tracing",
    "uninstall_tracer",
    "FabricMonitor",
    "ProviderMonitor",
    "monitor_provider",
    "DiagnosticReport",
    "diagnose",
]
