"""Monitoring and performance diagnostics (the SymbioMon stand-in).

The paper (section V) credits a composable monitoring service [5] with
diagnosing early HEPnOS performance problems, which led to the batching
and parallel-event-processing optimizations.  This package provides the
same capability for this stack:

- :class:`MetricRegistry` -- counters, gauges, and histogram metrics
  with time-series snapshots;
- :class:`ProviderMonitor` -- wraps a Yokan provider's databases to
  record per-operation counts and latencies transparently;
- :class:`FabricMonitor` -- samples fabric traffic into a time series;
- :func:`diagnose` -- the analysis pass: finds hot databases, skewed
  placements, and chatty (unbatched) clients, and says so.
"""

from repro.monitor.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.monitor.collect import (
    FabricMonitor,
    ProviderMonitor,
    monitor_provider,
)
from repro.monitor.diagnose import DiagnosticReport, diagnose

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "FabricMonitor",
    "ProviderMonitor",
    "monitor_provider",
    "DiagnosticReport",
    "diagnose",
]
