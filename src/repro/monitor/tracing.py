"""Cross-layer distributed tracing (the paper's missing observability).

Aggregate counters (:mod:`repro.monitor.metrics`) say *how much* time a
layer spends; they cannot follow one ``store``/``load``/PEP event
through Mercury -> Margo -> Yokan -> HEPnOS.  This module adds exactly
that:

- :class:`Span` -- one timed operation with tags, belonging to a trace;
- :class:`SpanContext` -- the binary-encodable (trace id, span id) pair
  that crosses the RPC boundary.  :func:`wrap_payload` injects it as an
  optional header in front of Mercury RPC payloads and
  :func:`unwrap_payload` extracts it on delivery, so server-side spans
  parent correctly to the client-side span that issued the RPC;
- :class:`Tracer` -- creates spans with thread-local context nesting
  (each OS thread -- each simulated MPI rank -- has its own stack);
- :class:`TraceCollector` -- records completed spans, optionally feeds
  per-span-name latency histograms into a
  :class:`~repro.monitor.metrics.MetricRegistry`, and exports Chrome
  trace-event JSON, a text tree, and a critical-path summary.

Zero-overhead contract: nothing here runs unless a tracer is installed.
Instrumented hot paths guard with the module-level :data:`enabled` flag
(one attribute read); :func:`span` returns a shared no-op span when no
tracer is active.  ``benchmarks/bench_pep_tracing.py`` measures both.
"""

from __future__ import annotations

import itertools
import json
import struct
import threading
import time
from typing import Optional

from repro.errors import ReproError

#: Fast-path flag read by instrumented code.  True iff a tracer is
#: installed via :func:`install_tracer`.
enabled = False

_active_tracer: Optional["Tracer"] = None

# -- wire format -------------------------------------------------------------
#
# A traced RPC payload is framed as  HEADER + 16-byte context + payload.
# Payloads that naturally begin with the 3-byte prefix are escaped with
# ESCAPE so extraction is unambiguous for arbitrary byte strings.

_PREFIX = b"\xc3TR"
TRACE_HEADER = _PREFIX + b"\x01"
TRACE_ESCAPE = _PREFIX + b"\x00"
_CTX_STRUCT = struct.Struct("<QQ")

_ids = itertools.count(1)


def _next_id() -> int:
    return next(_ids)


class SpanContext:
    """The propagated identity of a span: (trace id, span id).

    Binary form is 16 bytes (two little-endian u64), small enough to
    ride in front of every RPC payload.
    """

    __slots__ = ("trace_id", "span_id")
    WIRE_SIZE = _CTX_STRUCT.size

    def __init__(self, trace_id: int, span_id: int):
        self.trace_id = trace_id
        self.span_id = span_id

    def to_bytes(self) -> bytes:
        return _CTX_STRUCT.pack(self.trace_id, self.span_id)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "SpanContext":
        trace_id, span_id = _CTX_STRUCT.unpack(raw)
        return cls(trace_id, span_id)

    def __eq__(self, other) -> bool:
        return (isinstance(other, SpanContext)
                and other.trace_id == self.trace_id
                and other.span_id == self.span_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext(trace={self.trace_id:x}, span={self.span_id:x})"


def wrap_payload(payload: bytes) -> bytes:
    """Frame an outgoing RPC payload with the current span context.

    Called on every ``Engine._forward``.  With no tracer (or no active
    span) the payload passes through untouched unless it collides with
    the header prefix, in which case it is escaped.
    """
    if enabled:
        ctx = current_context()
        if ctx is not None:
            return TRACE_HEADER + ctx.to_bytes() + payload
    if payload[:3] == _PREFIX:
        return TRACE_ESCAPE + payload
    return payload


def unwrap_payload(payload: bytes) -> tuple[Optional[SpanContext], bytes]:
    """Extract ``(context, original payload)`` from a framed payload."""
    if payload[:3] != _PREFIX:
        return None, payload
    if payload[:4] == TRACE_HEADER:
        end = 4 + SpanContext.WIRE_SIZE
        return SpanContext.from_bytes(payload[4:end]), payload[end:]
    if payload[:4] == TRACE_ESCAPE:
        return None, payload[4:]
    return None, payload  # pragma: no cover - unknown frame kind


# -- spans -------------------------------------------------------------------


class Span:
    """One timed operation.  Use as a context manager or call
    :meth:`finish` explicitly."""

    __slots__ = ("tracer", "name", "context", "parent_id", "start", "end",
                 "tags", "error", "thread")

    def __init__(self, tracer: "Tracer", name: str, context: SpanContext,
                 parent_id: Optional[int], tags: dict):
        self.tracer = tracer
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.tags = tags
        self.error: Optional[str] = None
        self.thread = threading.current_thread().name
        self.start = time.monotonic()
        self.end: Optional[float] = None

    @property
    def trace_id(self) -> int:
        return self.context.trace_id

    @property
    def span_id(self) -> int:
        return self.context.span_id

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set_tag(self, key: str, value) -> None:
        self.tags[key] = value

    def finish(self) -> None:
        if self.end is None:
            self.end = time.monotonic()
            self.tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r} trace={self.trace_id:x} "
                f"span={self.span_id:x} dur={self.duration * 1e6:.1f}us)")


class _NullSpan:
    """Shared no-op span returned by :func:`span` when tracing is off."""

    __slots__ = ()

    def set_tag(self, key: str, value) -> None:
        pass

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()

#: Explicit "start a new trace" parent for :meth:`Tracer.span`.  Server
#: handlers use it when an RPC arrives without a trace header: falling
#: back to the thread's ambient span would fabricate a parent link that
#: never crossed the wire (client and server share a thread on the
#: loopback transport).
NO_PARENT = object()


class Tracer:
    """Creates spans; keeps the active span stack in thread-local state."""

    def __init__(self, collector: Optional["TraceCollector"] = None):
        self.collector = collector if collector is not None else TraceCollector()
        self._local = threading.local()

    # -- context ----------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def current_context(self) -> Optional[SpanContext]:
        current = self.current_span()
        return current.context if current is not None else None

    # -- span creation ----------------------------------------------------

    def span(self, name: str, parent=None, **tags) -> Span:
        """Start (and activate) a span.

        ``parent`` may be a :class:`Span`, a :class:`SpanContext`
        (typically extracted from an incoming RPC), or ``None``, in
        which case the thread's current span is the parent; with no
        current span a new trace begins.
        """
        if parent is None:
            parent = self.current_span()
        if parent is NO_PARENT or parent is None:
            context = SpanContext(_next_id(), _next_id())
            parent_id = None
        else:
            pctx = parent.context if isinstance(parent, Span) else parent
            context = SpanContext(pctx.trace_id, _next_id())
            parent_id = pctx.span_id
        span = Span(self, name, context, parent_id, tags)
        self._stack().append(span)
        return span

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        # Spans normally finish LIFO; tolerate out-of-order finishes
        # (e.g. a span finished from a callback) by removing wherever
        # it sits.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            stack.remove(span)
        self.collector.record(span)


# -- module-level tracer management ------------------------------------------


def install_tracer(tracer: Optional[Tracer] = None,
                   registry=None) -> Tracer:
    """Install the process-wide tracer and flip the fast-path flag.

    ``registry`` (a :class:`~repro.monitor.metrics.MetricRegistry`)
    makes the collector also feed per-span-name latency histograms.
    """
    global _active_tracer, enabled
    if tracer is None:
        tracer = Tracer(TraceCollector(registry=registry))
    _active_tracer = tracer
    enabled = True
    return tracer


def uninstall_tracer() -> Optional[Tracer]:
    """Remove the installed tracer (tracing reverts to zero overhead)."""
    global _active_tracer, enabled
    tracer, _active_tracer = _active_tracer, None
    enabled = False
    return tracer


def get_tracer() -> Optional[Tracer]:
    return _active_tracer


def current_context() -> Optional[SpanContext]:
    tracer = _active_tracer
    return tracer.current_context() if tracer is not None else None


def span(name: str, parent=None, **tags):
    """Start a span on the installed tracer, or a shared no-op span."""
    tracer = _active_tracer
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, parent=parent, **tags)


class trace_session:
    """Context manager: install a fresh tracer, uninstall on exit.

    ::

        with trace_session() as tracer:
            ...traced work...
        tracer.collector.save("trace.json")
    """

    def __init__(self, registry=None):
        self.registry = registry
        self.tracer: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self.tracer = install_tracer(registry=self.registry)
        return self.tracer

    def __exit__(self, *exc) -> None:
        uninstall_tracer()


# -- collection and export ---------------------------------------------------


class TraceCollector:
    """Records completed spans; exports and summarizes them.

    With a ``registry``, every finished span also lands in a
    ``trace.<name>`` latency histogram, unifying traces with the
    existing :class:`~repro.monitor.metrics.MetricRegistry` surface
    (``registry.rate``/``snapshot`` keep working on traced data).
    """

    def __init__(self, registry=None):
        self.spans: list[Span] = []
        self.registry = registry
        self._lock = threading.Lock()

    def record(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)
        if self.registry is not None:
            self.registry.histogram(
                f"trace.{span.name}", "span latency [s]"
            ).observe(span.duration)

    def __len__(self) -> int:
        return len(self.spans)

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()

    # -- lookup -----------------------------------------------------------

    def traces(self) -> dict[int, list[Span]]:
        """Spans grouped by trace id, each group in start order."""
        out: dict[int, list[Span]] = {}
        with self._lock:
            spans = list(self.spans)
        for span in sorted(spans, key=lambda s: s.start):
            out.setdefault(span.trace_id, []).append(span)
        return out

    def find(self, name: str) -> list[Span]:
        with self._lock:
            return [s for s in self.spans if s.name == name]

    # -- Chrome trace-event JSON ------------------------------------------

    def chrome_trace(self) -> dict:
        """The collected spans in Chrome trace-event format.

        Load the result (or a :meth:`save`d file) in ``chrome://tracing``
        or https://ui.perfetto.dev.  Complete-duration (``"ph": "X"``)
        events carry span identity in ``args`` so :meth:`load` can
        round-trip the file.
        """
        with self._lock:
            spans = sorted(self.spans, key=lambda s: s.start)
        tids: dict[str, int] = {}
        events = []
        for span in spans:
            tid = tids.setdefault(span.thread, len(tids) + 1)
            args = {str(k): _json_safe(v) for k, v in span.tags.items()}
            args["trace_id"] = format(span.trace_id, "x")
            args["span_id"] = format(span.span_id, "x")
            if span.parent_id is not None:
                args["parent_id"] = format(span.parent_id, "x")
            if span.error is not None:
                args["error"] = span.error
            events.append({
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": 1,
                "tid": tid,
                "args": args,
            })
        for thread, tid in tids.items():
            events.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": thread},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_json(self) -> str:
        return json.dumps(self.chrome_trace(), indent=1)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "TraceCollector":
        """Rebuild a collector from a :meth:`save`d Chrome trace file."""
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        events = doc.get("traceEvents", doc if isinstance(doc, list) else [])
        collector = cls()
        threads = {}
        for event in events:
            if event.get("ph") == "M" and event.get("name") == "thread_name":
                threads[event.get("tid")] = event["args"].get("name", "")
        tracer = Tracer(collector)
        for event in events:
            if event.get("ph") != "X":
                continue
            args = dict(event.get("args", {}))
            try:
                trace_id = int(args.pop("trace_id"), 16)
                span_id = int(args.pop("span_id"), 16)
            except KeyError:
                raise ReproError(
                    f"{path}: not a repro-trace file (events lack span ids)"
                ) from None
            parent = args.pop("parent_id", None)
            error = args.pop("error", None)
            span = Span.__new__(Span)
            span.tracer = tracer
            span.name = event["name"]
            span.context = SpanContext(trace_id, span_id)
            span.parent_id = int(parent, 16) if parent is not None else None
            span.tags = args
            span.error = error
            span.thread = threads.get(event.get("tid"), "main")
            span.start = event["ts"] / 1e6
            span.end = span.start + event.get("dur", 0.0) / 1e6
            collector.spans.append(span)
        return collector

    # -- text tree ---------------------------------------------------------

    def render_tree(self, trace_id: Optional[int] = None,
                    max_spans: int = 200) -> str:
        """Indented text rendering of one trace (or all of them)."""
        lines: list[str] = []
        for tid, spans in self.traces().items():
            if trace_id is not None and tid != trace_id:
                continue
            lines.append(f"trace {tid:x} ({len(spans)} spans)")
            by_parent: dict[Optional[int], list[Span]] = {}
            ids = {s.span_id for s in spans}
            for span in spans:
                parent = span.parent_id if span.parent_id in ids else None
                by_parent.setdefault(parent, []).append(span)
            emitted = 0

            def walk(parent: Optional[int], depth: int) -> None:
                nonlocal emitted
                for span in by_parent.get(parent, ()):
                    if emitted >= max_spans:
                        return
                    emitted += 1
                    tags = " ".join(f"{k}={v}" for k, v in span.tags.items())
                    error = f" ERROR({span.error})" if span.error else ""
                    lines.append(
                        f"  {'  ' * depth}{span.name} "
                        f"[{span.duration * 1e6:.0f}us]"
                        + (f" {tags}" if tags else "") + error
                    )
                    walk(span.span_id, depth + 1)

            walk(None, 0)
            if emitted >= max_spans and len(spans) > emitted:
                lines.append(f"  ... ({len(spans) - emitted} more spans)")
        return "\n".join(lines)

    # -- critical path -----------------------------------------------------

    def critical_path(self, trace_id: Optional[int] = None) -> list[dict]:
        """The dominant root-to-leaf chain of the trace.

        Starting from the longest root span, each step descends into
        the child that finished last (the one the parent actually
        waited on).  Entries report each span's *self* time -- its
        duration minus the time covered by its own children -- which is
        where optimization effort pays off.
        """
        traces = self.traces()
        if not traces:
            return []
        if trace_id is None:
            trace_id = max(
                traces, key=lambda t: sum(s.duration for s in traces[t])
            )
        spans = traces.get(trace_id, [])
        ids = {s.span_id for s in spans}
        children: dict[Optional[int], list[Span]] = {}
        for span in spans:
            parent = span.parent_id if span.parent_id in ids else None
            children.setdefault(parent, []).append(span)
        roots = children.get(None, [])
        if not roots:
            return []
        path = []
        node = max(roots, key=lambda s: s.duration)
        while node is not None:
            kids = children.get(node.span_id, [])
            child_time = sum(k.duration for k in kids)
            path.append({
                "name": node.name,
                "duration": node.duration,
                "self_time": max(0.0, node.duration - child_time),
                "tags": dict(node.tags),
            })
            node = max(kids, key=lambda s: s.end or s.start) if kids else None
        return path

    def summary(self) -> dict:
        """Per-span-name aggregate: count, total and mean duration."""
        with self._lock:
            spans = list(self.spans)
        out: dict[str, dict] = {}
        for span in spans:
            entry = out.setdefault(
                span.name, {"count": 0, "total_seconds": 0.0}
            )
            entry["count"] += 1
            entry["total_seconds"] += span.duration
        for entry in out.values():
            entry["mean_seconds"] = entry["total_seconds"] / entry["count"]
        return out


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return value.hex()
    return str(value)


__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "TraceCollector",
    "NO_PARENT",
    "NULL_SPAN",
    "TRACE_HEADER",
    "TRACE_ESCAPE",
    "enabled",
    "install_tracer",
    "uninstall_tracer",
    "get_tracer",
    "current_context",
    "span",
    "trace_session",
    "wrap_payload",
    "unwrap_payload",
]
