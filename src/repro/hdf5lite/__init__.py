"""hdf5lite: a minimal hierarchical columnar file format.

The NOvA inputs to HEPnOS are HDF5 files: a hierarchy of groups where
leaf groups are named after the C++ class they store and contain a set
of equal-length 1-D tables -- ``run``, ``subrun``, ``event``, plus one
table per member variable (paper section IV-B).  HDF5 itself is not
available offline, so this package implements the subset the ingest
path needs:

- nested named groups with string/number attributes;
- n-dimensional NumPy datasets with lazy (offset-based) reads;
- a structure walk used by the HDF2HEPnOS schema-discovery tool.
"""

from repro.hdf5lite.format import H5LiteFile, Group, DatasetInfo

__all__ = ["H5LiteFile", "Group", "DatasetInfo"]
