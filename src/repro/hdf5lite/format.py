"""On-disk format and object model for hdf5lite files.

Layout::

    [8B magic "H5LITE01"][blob section ...][TOC JSON][8B TOC length]

Dataset contents live in the blob section; the table of contents at the
end records the group tree, attributes, and per-dataset (dtype, shape,
offset, nbytes, crc32).  Datasets are read lazily by offset so scanning
a file's *structure* (what HDF2HEPnOS does) costs one TOC read.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, Optional, Union

import numpy as np

from repro.errors import HDF5LiteError

_MAGIC = b"H5LITE01"
_TAIL = struct.Struct("<Q")


@dataclass(frozen=True)
class DatasetInfo:
    """TOC record for one dataset."""

    name: str
    dtype: str
    shape: tuple
    offset: int
    nbytes: int          # stored (possibly compressed) size
    crc: int
    compression: Optional[str] = None

    @property
    def length(self) -> int:
        return self.shape[0] if self.shape else 1


class Group:
    """A node in the file's namespace; may hold datasets and subgroups."""

    def __init__(self, file: "H5LiteFile", path: str):
        self._file = file
        self.path = path
        self.attrs: dict = {}
        self._children: dict[str, "Group"] = {}
        self._datasets: dict[str, Union[np.ndarray, DatasetInfo]] = {}
        self._compression: dict[str, str] = {}

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1] if self.path else ""

    # -- structure ---------------------------------------------------------

    def create_group(self, name: str) -> "Group":
        self._file._check_writable()
        if not name or "/" in name:
            # Nested creation: create each component.
            group = self
            for part in filter(None, name.split("/")):
                group = group.create_group(part)
            if group is self:
                raise HDF5LiteError(f"invalid group name {name!r}")
            return group
        if name in self._children:
            return self._children[name]
        if name in self._datasets:
            raise HDF5LiteError(f"{name!r} already names a dataset")
        child = Group(self._file, f"{self.path}/{name}" if self.path else name)
        self._children[name] = child
        return child

    def create_dataset(self, name: str, data: np.ndarray,
                       compression: Optional[str] = None) -> None:
        """Add a dataset; ``compression="zlib"`` deflates the payload."""
        self._file._check_writable()
        if not name or "/" in name:
            raise HDF5LiteError(f"invalid dataset name {name!r}")
        if name in self._datasets or name in self._children:
            raise HDF5LiteError(f"{name!r} already exists in {self.path!r}")
        if compression not in (None, "zlib"):
            raise HDF5LiteError(f"unknown compression {compression!r}")
        arr = np.asarray(data)
        if arr.dtype.hasobject:
            raise HDF5LiteError("object-dtype datasets are not supported")
        self._datasets[name] = np.ascontiguousarray(arr)
        if compression:
            self._compression[name] = compression

    # -- access --------------------------------------------------------------

    def groups(self) -> list[str]:
        return sorted(self._children)

    def datasets(self) -> list[str]:
        return sorted(self._datasets)

    def group(self, name: str) -> "Group":
        node = self
        for part in filter(None, name.split("/")):
            try:
                node = node._children[part]
            except KeyError:
                raise HDF5LiteError(
                    f"no group {part!r} under {node.path!r}"
                ) from None
        return node

    def dataset_info(self, name: str) -> DatasetInfo:
        entry = self._datasets.get(name)
        if entry is None:
            raise HDF5LiteError(f"no dataset {name!r} under {self.path!r}")
        if isinstance(entry, DatasetInfo):
            return entry
        return DatasetInfo(name, entry.dtype.str, entry.shape, -1,
                           entry.nbytes, 0,
                           compression=self._compression.get(name))

    def read(self, name: str) -> np.ndarray:
        """Load a dataset's contents (lazy file read in read mode)."""
        entry = self._datasets.get(name)
        if entry is None:
            raise HDF5LiteError(f"no dataset {name!r} under {self.path!r}")
        if isinstance(entry, np.ndarray):
            return entry
        return self._file._read_blob(entry)

    def __getitem__(self, path: str) -> Union["Group", np.ndarray]:
        """Path access: a trailing component naming a dataset reads it."""
        parts = [p for p in path.split("/") if p]
        node = self
        for i, part in enumerate(parts):
            if part in node._children:
                node = node._children[part]
            elif part in node._datasets and i == len(parts) - 1:
                return node.read(part)
            else:
                raise HDF5LiteError(f"no such path {path!r}")
        return node

    def __contains__(self, path: str) -> bool:
        try:
            self[path]
            return True
        except HDF5LiteError:
            return False

    def walk(self) -> Iterator["Group"]:
        """Depth-first iteration over this group and all descendants."""
        yield self
        for name in sorted(self._children):
            yield from self._children[name].walk()

    def is_leaf_table(self) -> bool:
        """Whether this group looks like an HDF5 'class table' leaf.

        Leaf groups have no subgroups and at least one dataset; all
        datasets must share their leading dimension.
        """
        if self._children or not self._datasets:
            return False
        lengths = {self.dataset_info(n).length for n in self._datasets}
        return len(lengths) == 1

    # -- TOC (de)serialization ----------------------------------------------

    def _to_toc(self, blobs: list) -> dict:
        datasets = {}
        for name, entry in self._datasets.items():
            if isinstance(entry, DatasetInfo):
                raise HDF5LiteError("cannot rewrite a read-mode group")
            raw = entry.tobytes()
            compression = self._compression.get(name)
            payload = zlib.compress(raw) if compression == "zlib" else raw
            offset = sum(len(b) for b in blobs) + len(_MAGIC)
            blobs.append(payload)
            datasets[name] = {
                "dtype": entry.dtype.str,
                "shape": list(entry.shape),
                "offset": offset,
                "nbytes": len(payload),
                "crc": zlib.crc32(payload),
                "comp": compression,
            }
        return {
            "attrs": self.attrs,
            "datasets": datasets,
            "children": {
                name: child._to_toc(blobs)
                for name, child in self._children.items()
            },
        }

    def _from_toc(self, toc: dict) -> None:
        self.attrs = dict(toc.get("attrs", {}))
        for name, meta in toc.get("datasets", {}).items():
            self._datasets[name] = DatasetInfo(
                name=name,
                dtype=meta["dtype"],
                shape=tuple(meta["shape"]),
                offset=meta["offset"],
                nbytes=meta["nbytes"],
                crc=meta["crc"],
                compression=meta.get("comp"),
            )
        for name, child_toc in toc.get("children", {}).items():
            child = Group(self._file, f"{self.path}/{name}" if self.path else name)
            child._from_toc(child_toc)
            self._children[name] = child


class H5LiteFile:
    """A file handle; use :meth:`create` or :meth:`open`."""

    def __init__(self, path: str, mode: str):
        if mode not in ("r", "w"):
            raise HDF5LiteError(f"bad mode {mode!r}")
        self.path = path
        self.mode = mode
        self.root = Group(self, "")
        self._closed = False
        if mode == "r":
            self._load_toc()

    # -- constructors ---------------------------------------------------------

    @classmethod
    def create(cls, path: str) -> "H5LiteFile":
        return cls(path, "w")

    @classmethod
    def open(cls, path: str) -> "H5LiteFile":
        return cls(path, "r")

    # -- context manager --------------------------------------------------------

    def __enter__(self) -> "H5LiteFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        if self.mode == "w":
            self._write_out()
        self._closed = True

    # -- delegation to root --------------------------------------------------

    def create_group(self, name: str) -> Group:
        return self.root.create_group(name)

    def __getitem__(self, path: str):
        return self.root[path]

    def __contains__(self, path: str) -> bool:
        return path in self.root

    def walk(self) -> Iterator[Group]:
        return self.root.walk()

    # -- io ---------------------------------------------------------------

    def _check_writable(self) -> None:
        if self.mode != "w":
            raise HDF5LiteError("file is read-only")
        if self._closed:
            raise HDF5LiteError("file is closed")

    def _write_out(self) -> None:
        blobs: list[np.ndarray] = []
        toc = self.root._to_toc(blobs)
        payload = json.dumps(toc).encode()
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(_MAGIC)
            for blob in blobs:
                f.write(blob)
            f.write(payload)
            f.write(_TAIL.pack(len(payload)))
        os.replace(tmp, self.path)

    def _load_toc(self) -> None:
        try:
            with open(self.path, "rb") as f:
                magic = f.read(len(_MAGIC))
                if magic != _MAGIC:
                    raise HDF5LiteError(f"{self.path}: not an hdf5lite file")
                f.seek(-_TAIL.size, os.SEEK_END)
                end = f.tell()
                (toc_len,) = _TAIL.unpack(f.read(_TAIL.size))
                if toc_len > end:
                    raise HDF5LiteError(f"{self.path}: corrupt TOC length")
                f.seek(end - toc_len)
                toc = json.loads(f.read(toc_len).decode())
        except OSError as exc:
            raise HDF5LiteError(f"cannot open {self.path}: {exc}") from None
        self.root._from_toc(toc)

    def _read_blob(self, info: DatasetInfo) -> np.ndarray:
        with open(self.path, "rb") as f:
            f.seek(info.offset)
            raw = f.read(info.nbytes)
        if len(raw) != info.nbytes:
            raise HDF5LiteError(f"{self.path}: truncated dataset {info.name!r}")
        if zlib.crc32(raw) != info.crc:
            raise HDF5LiteError(f"{self.path}: checksum mismatch in {info.name!r}")
        if info.compression == "zlib":
            raw = zlib.decompress(raw)
        return np.frombuffer(raw, dtype=np.dtype(info.dtype)).reshape(info.shape).copy()
