"""Weighted fair-share scheduling of admitted requests.

The broker does not reorder Argobots pools directly -- handler ULTs
spawned by the Mercury engine cooperatively *wait their turn*: each
admitted request gets a :class:`Ticket`, and its handler yields the
processor until the scheduler grants it one of a bounded number of
service slots.  Grants follow **deficit round-robin** (Shreedhar &
Varghese) across the tenants of a priority class: each visit to a
tenant queue tops up its deficit counter by ``quantum * weight`` and
serves head-of-line requests while the deficit covers their cost, so
a tenant's long-run share of service bytes is proportional to its
weight and a queue with cheap requests can never be starved by a
neighbour with expensive ones.

Priority classes are served strictly: interactive queues drain before
batch queues, and a configurable slice of the service slots (the
*interactive reserve*) is off-limits to batch work entirely, so an
interactive request never waits behind a full window of batch
requests -- the broker's preemption story.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict, deque
from typing import Deque, Dict, Optional

from repro.yokan.wire import PRIORITY_BATCH, PRIORITY_INTERACTIVE

_ticket_ids = itertools.count()


class Ticket:
    """One admitted request waiting for (or holding) a service slot."""

    __slots__ = ("tenant", "priority", "cost", "weight", "granted",
                 "released", "seq")

    def __init__(self, tenant: str, priority: int, cost: int, weight: float):
        self.tenant = tenant
        self.priority = priority
        self.cost = max(1, int(cost))
        self.weight = weight
        #: flipped exactly once, under the scheduler lock; handler ULTs
        #: poll it without the lock (a bool read is atomic).
        self.granted = False
        self.released = False
        self.seq = next(_ticket_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("released" if self.released
                 else "granted" if self.granted else "queued")
        return f"Ticket({self.tenant!r}, cost={self.cost}, {state})"


class _ClassQueues:
    """DRR state for one priority class: active queues + deficits."""

    __slots__ = ("queues", "deficit", "order", "credited")

    def __init__(self) -> None:
        #: tenant -> FIFO of queued tickets
        self.queues: Dict[str, Deque[Ticket]] = {}
        #: tenant -> accumulated deficit (service credit, in cost units)
        self.deficit: Dict[str, float] = {}
        #: round-robin visit order over tenants with queued work; an
        #: OrderedDict doubles as an ordered set with O(1) move-to-end.
        self.order: "OrderedDict[str, None]" = OrderedDict()
        #: tenants already credited their quantum for the current visit
        #: (a tenant mid-burst keeps the front of the rotation without
        #: earning another quantum per grant)
        self.credited: set = set()

    def enqueue(self, ticket: Ticket) -> None:
        queue = self.queues.get(ticket.tenant)
        if queue is None:
            queue = self.queues[ticket.tenant] = deque()
        queue.append(ticket)
        if ticket.tenant not in self.order:
            self.order[ticket.tenant] = None

    def depth(self, tenant: str) -> int:
        queue = self.queues.get(tenant)
        return len(queue) if queue else 0

    def empty(self) -> bool:
        return not self.order


class FairShareScheduler:
    """Deficit round-robin over tenant queues, onto bounded slots.

    ``slots`` bounds concurrently *executing* requests (per broker, i.e.
    per server); ``interactive_reserve`` of them are usable only by the
    interactive class.  ``quantum`` is the DRR quantum in cost units
    (request payload bytes): per round each tenant earns
    ``quantum * weight`` of service credit.
    """

    def __init__(self, slots: int = 8, interactive_reserve: int = 2,
                 quantum: int = 4096):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if not 0 <= interactive_reserve < slots:
            raise ValueError("interactive_reserve must be in [0, slots)")
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.slots = slots
        self.interactive_reserve = interactive_reserve
        self.quantum = quantum
        self._lock = threading.Lock()
        self._classes: Dict[int, _ClassQueues] = {
            PRIORITY_INTERACTIVE: _ClassQueues(),
            PRIORITY_BATCH: _ClassQueues(),
        }
        self._running = 0
        #: tickets submitted but not yet granted, maintained
        #: incrementally (submit is on every admitted request's path)
        self._queued = 0
        #: grant log (tenant ids, bounded) for fairness introspection
        self.granted_total = 0
        self.preemptions = 0
        self._max_queued_ever = 0

    # -- submission / completion -------------------------------------------

    def submit(self, tenant: str, priority: int, cost: int,
               weight: float = 1.0,
               max_queue: Optional[int] = None) -> Optional[Ticket]:
        """Queue one admitted request; returns its ticket.

        The ticket may come back already granted (free slot, empty
        queues) -- the common uncontended case costs one lock round
        trip and no waiting.  With ``max_queue`` set, a tenant queue
        already that deep refuses the ticket (returns ``None``) under
        the same lock, so the admission path's queue bound costs no
        extra lock round trip.
        """
        ticket = Ticket(tenant, priority, cost, weight)
        with self._lock:
            # Uncontended fast path: with nothing queued anywhere and a
            # slot this priority class may use, DRR has no one to
            # arbitrate between -- grant directly, skipping the queue
            # machinery entirely.  This is the idle-quota hot path the
            # broker-overhead gate measures.
            if self._queued == 0:
                limit = (self.slots if priority == PRIORITY_INTERACTIVE
                         else self.slots - self.interactive_reserve)
                if self._running < limit:
                    ticket.granted = True
                    self._running += 1
                    self.granted_total += 1
                    return ticket
            cls = self._classes.setdefault(priority, _ClassQueues())
            if max_queue is not None and cls.depth(tenant) >= max_queue:
                return None
            cls.enqueue(ticket)
            self._queued += 1
            if self._queued > self._max_queued_ever:
                self._max_queued_ever = self._queued
            self._pump()
        return ticket

    def queue_depth(self, tenant: str, priority: int) -> int:
        with self._lock:
            cls = self._classes.get(priority)
            return cls.depth(tenant) if cls is not None else 0

    def release(self, ticket: Ticket) -> None:
        """Return the slot held by a granted ticket; wakes queued work."""
        with self._lock:
            if ticket.released or not ticket.granted:
                return
            ticket.released = True
            self._running -= 1
            self._pump()

    # -- the DRR pump (runs under the lock) --------------------------------

    def _grant(self, ticket: Ticket) -> None:
        ticket.granted = True
        self._queued -= 1
        self._running += 1
        self.granted_total += 1

    def _pump(self) -> None:
        if self._queued == 0:
            return
        # Strict priority: drain interactive before batch.  Batch may
        # not take the last ``interactive_reserve`` slots.
        while self._running < self.slots:
            if self._grant_next(PRIORITY_INTERACTIVE):
                continue
            if self._running >= self.slots - self.interactive_reserve:
                break
            if not self._grant_next(PRIORITY_BATCH):
                break

    def _grant_next(self, priority: int) -> bool:
        """Grant one ticket of ``priority`` per DRR; False if none."""
        cls = self._classes.get(priority)
        if cls is None or cls.empty():
            return False
        # Visit queues in round-robin order.  A visit earns the tenant
        # one quantum * weight of deficit, and the tenant then serves
        # head-of-line requests *while* the deficit covers them (one
        # grant per call here: a mid-burst tenant keeps the front of
        # the rotation, already credited, until its deficit runs out).
        # A visit whose deficit still does not cover the head rotates
        # to the back and keeps the credit, so every nonempty queue is
        # served within ceil(max_cost / (quantum * weight)) rounds --
        # the no-starvation bound the property tests pin down.  A free
        # slot with queued work must always end in a grant, so when a
        # full round grants nothing we keep rounding: deficits only
        # grow, so this terminates within that same bound.
        while not cls.empty():
            for _ in range(len(cls.order)):
                tenant = next(iter(cls.order))
                queue = cls.queues[tenant]
                head = queue[0]
                deficit = cls.deficit.get(tenant, 0.0)
                if tenant not in cls.credited:
                    deficit += self.quantum * head.weight
                    cls.credited.add(tenant)
                if deficit >= head.cost:
                    queue.popleft()
                    deficit -= head.cost
                    if not queue:
                        # Standard DRR: an emptied queue forfeits its
                        # credit, so idleness is not bankable.
                        del cls.queues[tenant]
                        cls.deficit.pop(tenant, None)
                        cls.order.pop(tenant, None)
                        cls.credited.discard(tenant)
                    elif deficit >= queue[0].cost:
                        # Burst continues: stay at the front, still
                        # credited, and spend the remaining deficit on
                        # the next head at the next grant opportunity.
                        cls.deficit[tenant] = deficit
                    else:
                        cls.deficit[tenant] = deficit
                        cls.order.move_to_end(tenant)
                        cls.credited.discard(tenant)
                    if priority == PRIORITY_INTERACTIVE and \
                            self._batch_queued():
                        self.preemptions += 1
                    self._grant(head)
                    return True
                cls.deficit[tenant] = deficit
                cls.order.move_to_end(tenant)
                cls.credited.discard(tenant)
        return False

    def _batch_queued(self) -> bool:
        cls = self._classes.get(PRIORITY_BATCH)
        return cls is not None and not cls.empty()

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            queued = {
                priority: {t: len(q) for t, q in cls.queues.items()}
                for priority, cls in self._classes.items()
            }
            return {
                "running": self._running,
                "slots": self.slots,
                "interactive_reserve": self.interactive_reserve,
                "granted_total": self.granted_total,
                "preemptions": self.preemptions,
                "max_queued": self._max_queued_ever,
                "queued": queued,
            }

    def queued_total(self) -> int:
        with self._lock:
            return self._queued
