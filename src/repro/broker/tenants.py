"""Tenant registry: who may talk to the service, and on what terms.

A :class:`TenantSpec` is the server-side contract for one tenant --
priority class, fair-share weight, token-bucket rate limit, bytes-in-
flight quota, queue bound, and an optional quota token the client must
present.  The :class:`TenantRegistry` resolves the tenant header of an
incoming request (:class:`repro.yokan.wire.TenantEnvelope`) to a spec,
falling back to a configurable ``default`` spec for tenants that were
never registered (or rejecting them outright when no default is
configured).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional

from repro.errors import ConfigError, QuotaExceeded
from repro.yokan import wire

#: spec fields an operator may set in the bedrock ``tenants.registry``
#: (and ``tenants.default``) config sections.
_SPEC_KEYS = {"id", "priority", "weight", "rate", "burst",
              "max_bytes_in_flight", "max_queue", "token"}


@dataclass(frozen=True)
class TenantSpec:
    """Admission and scheduling parameters for one tenant."""

    tenant: str
    #: ``"interactive"`` requests preempt ``"batch"`` ones
    priority: str = "batch"
    #: fair-share weight within the priority class (DRR quantum scale)
    weight: float = 1.0
    #: token-bucket refill rate, requests per second (inf = unlimited)
    rate: float = math.inf
    #: token-bucket capacity; defaults to one second of ``rate``
    burst: Optional[float] = None
    #: request payload + response bytes this tenant may have in flight
    max_bytes_in_flight: int = 64 * 1024 * 1024
    #: admitted-but-not-yet-scheduled requests the broker will queue
    max_queue: int = 256
    #: expected quota token; empty = no token check
    token: str = ""

    def __post_init__(self) -> None:
        wire.priority_code(self.priority)  # validates the class name
        if self.weight <= 0:
            raise ConfigError(f"tenant {self.tenant!r}: weight must be > 0")
        if self.rate <= 0:
            raise ConfigError(f"tenant {self.tenant!r}: rate must be > 0")
        if self.burst is not None and self.burst <= 0:
            raise ConfigError(f"tenant {self.tenant!r}: burst must be > 0")
        if self.max_bytes_in_flight <= 0:
            raise ConfigError(
                f"tenant {self.tenant!r}: max_bytes_in_flight must be > 0")
        if self.max_queue < 1:
            raise ConfigError(
                f"tenant {self.tenant!r}: max_queue must be >= 1")

    @property
    def burst_size(self) -> float:
        """Effective bucket capacity: ``burst`` or one second of rate."""
        if self.burst is not None:
            return self.burst
        if math.isinf(self.rate):
            return math.inf
        return max(1.0, self.rate)

    @property
    def priority_code(self) -> int:
        return wire.priority_code(self.priority)

    @classmethod
    def from_config(cls, spec: dict, tenant: Optional[str] = None
                    ) -> "TenantSpec":
        if not isinstance(spec, dict):
            raise ConfigError("tenant specs must be objects")
        unknown = set(spec) - _SPEC_KEYS
        if unknown:
            raise ConfigError(
                f"unknown tenant settings: {sorted(unknown)} "
                f"(known: {sorted(_SPEC_KEYS)})")
        name = spec.get("id", tenant)
        if not name and tenant is None:
            raise ConfigError("every registry entry needs an 'id'")
        kwargs = {k: spec[k] for k in spec if k != "id"}
        if "rate" in kwargs:
            kwargs["rate"] = float(kwargs["rate"])
        return cls(tenant=name or "", **kwargs)


class TenantRegistry:
    """Resolve tenant envelopes to specs; enforce quota tokens."""

    def __init__(self, specs: Iterable[TenantSpec] = (),
                 default: Optional[TenantSpec] = None):
        self._specs: Dict[str, TenantSpec] = {}
        for spec in specs:
            if spec.tenant in self._specs:
                raise ConfigError(f"duplicate tenant {spec.tenant!r}")
            self._specs[spec.tenant] = spec
        #: spec applied to tenants absent from the registry; ``None``
        #: rejects them (closed registry).
        self.default = default
        #: re-keyed default specs, memoized per tenant -- resolve() is
        #: on every request's admission path and dataclasses.replace
        #: re-runs the frozen-spec validation each time.
        self._default_cache: Dict[str, TenantSpec] = {}

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._specs

    def tenants(self) -> list[str]:
        return sorted(self._specs)

    def get(self, tenant: str) -> Optional[TenantSpec]:
        return self._specs.get(tenant)

    def resolve(self, meta: wire.TenantEnvelope) -> TenantSpec:
        """The spec governing one request; raises on unknown/bad-token.

        Unknown tenants inherit the ``default`` spec (re-keyed to their
        id so accounting stays per-tenant) when one is configured.  A
        registered tenant with a non-empty expected token must present
        it; both failure modes raise :class:`QuotaExceeded` so the
        rejection travels the wire as a 429-style error.
        """
        spec = self._specs.get(meta.tenant)
        if spec is None:
            if self.default is None:
                raise QuotaExceeded(
                    f"unknown tenant {meta.tenant!r} and the registry "
                    f"has no default tenant spec")
            spec = self._default_cache.get(meta.tenant)
            if spec is None:
                if len(self._default_cache) >= 4096:
                    self._default_cache.clear()
                spec = replace(self.default, tenant=meta.tenant)
                self._default_cache[meta.tenant] = spec
            return spec
        if spec.token and meta.token != spec.token:
            raise QuotaExceeded(
                f"tenant {meta.tenant!r} presented a bad quota token")
        return spec

    @classmethod
    def from_config(cls, config: dict) -> "TenantRegistry":
        """Build from the bedrock ``tenants`` config section.

        ``default`` omitted means an *open* registry (unregistered
        tenants get stock :class:`TenantSpec` terms); an explicit
        ``"default": null`` closes it (unknown tenants are rejected).
        """
        specs = [TenantSpec.from_config(entry)
                 for entry in config.get("registry", [])]
        default_cfg = config.get("default", {})
        default = (TenantSpec.from_config(default_cfg, tenant="")
                   if default_cfg is not None else None)
        return cls(specs, default=default)
