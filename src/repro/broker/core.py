"""The request broker: admission control + fair-share + ops surface.

One :class:`RequestBroker` fronts all the Yokan providers of a Bedrock
server.  For every tenant-tagged RPC the provider asks the broker to
:meth:`~RequestBroker.admit` the request *before* unsealing its
payload:

1. the tenant envelope resolves against the :class:`TenantRegistry`
   (unknown tenant / bad quota token -> :class:`QuotaExceeded`);
2. the tenant's **token bucket** must cover the request
   (:class:`ServiceBusy` with a ``retry_after_s`` hint equal to the
   bucket's refill time otherwise);
3. the tenant's **bytes-in-flight quota** and **queue bound** must have
   room (:class:`QuotaExceeded` / :class:`ServiceBusy` otherwise);
4. the admitted request is submitted to the
   :class:`~repro.broker.scheduler.FairShareScheduler` and the handler
   ULT yields until its ticket is granted.

Shedding happens before any payload decode or database work, so an
overloaded server spends O(1) per rejected request.  Completions feed
per-tenant metrics (admitted / shed / queued / completed gauges and
counters in a :class:`~repro.monitor.MetricRegistry`) and a bounded
**slow-query log** for the ops surface (``repro-hepnos tenants``).
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Callable, Dict, Optional

from repro.broker.scheduler import FairShareScheduler, Ticket
from repro.broker.tenants import TenantRegistry, TenantSpec
from repro.errors import ConfigError, QuotaExceeded, ServiceBusy
from repro.monitor.metrics import MetricRegistry
from repro.yokan import wire


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``."""

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock", "_lock")

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._clock = clock
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self, n: float = 1.0) -> float:
        """Take ``n`` tokens; 0.0 on success, else seconds until refill."""
        if math.isinf(self.rate):
            return 0.0
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst,
                               self._tokens + (now - self._last) * self.rate)
            self._last = now
            if self._tokens >= n:
                self._tokens -= n
                return 0.0
            return (n - self._tokens) / self.rate


class Admission:
    """One admitted request: quota accounting + its scheduler ticket."""

    __slots__ = ("spec", "op", "nbytes", "ticket", "admitted_at")

    def __init__(self, spec: TenantSpec, op: str, nbytes: int,
                 ticket: Ticket, admitted_at: float):
        self.spec = spec
        self.op = op
        self.nbytes = nbytes
        self.ticket = ticket
        self.admitted_at = admitted_at

    @property
    def tenant(self) -> str:
        return self.spec.tenant


class SlowQueryLog:
    """Bounded ring of the slowest served requests, for the ops CLI."""

    def __init__(self, threshold_s: float = 0.05, capacity: int = 128):
        self.threshold_s = threshold_s
        self._entries: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, tenant: str, op: str, elapsed_s: float,
               queued_s: float, nbytes: int) -> None:
        if elapsed_s < self.threshold_s:
            return
        with self._lock:
            self._entries.append({
                "tenant": tenant, "op": op,
                "elapsed_s": round(elapsed_s, 6),
                "queued_s": round(queued_s, 6),
                "bytes": nbytes, "at": time.time(),
            })

    def entries(self) -> list:
        with self._lock:
            return list(self._entries)


class _TenantState:
    __slots__ = ("bucket", "bytes_in_flight", "counters", "metric_pairs")

    def __init__(self, spec: TenantSpec,
                 clock: Callable[[], float]) -> None:
        self.bucket = TokenBucket(spec.rate, spec.burst_size, clock=clock)
        self.bytes_in_flight = 0
        self.counters = {"admitted": 0, "shed": 0, "completed": 0,
                         "shed_rate": 0, "shed_quota": 0, "shed_queue": 0,
                         "bytes_served": 0}
        #: event name -> (global counter, per-tenant counter); built
        #: lazily so the registry lookup and name formatting happen
        #: once per tenant, not once per request.
        self.metric_pairs: Dict[str, tuple] = {}


class RequestBroker:
    """Admission control and fair-share scheduling for one server."""

    def __init__(self, registry: Optional[TenantRegistry] = None,
                 slots: int = 8, interactive_reserve: int = 2,
                 quantum_bytes: int = 4096,
                 slow_query_s: float = 0.05,
                 shed_retry_hint_s: float = 0.002,
                 metrics: Optional[MetricRegistry] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.registry = registry if registry is not None else TenantRegistry(
            default=TenantSpec(tenant=""))
        self.scheduler = FairShareScheduler(
            slots=slots,
            interactive_reserve=max(0, min(interactive_reserve, slots - 1)),
            quantum=quantum_bytes)
        self.slow_queries = SlowQueryLog(threshold_s=slow_query_s)
        self.shed_retry_hint_s = shed_retry_hint_s
        self.metrics = metrics if metrics is not None else MetricRegistry(
            "broker")
        self._clock = clock
        self._states: Dict[str, _TenantState] = {}
        self._lock = threading.Lock()

    # -- internal ----------------------------------------------------------

    def _state(self, spec: TenantSpec) -> _TenantState:
        state = self._states.get(spec.tenant)
        if state is None:
            with self._lock:
                state = self._states.get(spec.tenant)
                if state is None:
                    state = _TenantState(spec, self._clock)
                    self._states[spec.tenant] = state
        return state

    def _count(self, state: _TenantState, tenant: str, what: str) -> None:
        state.counters[what] += 1
        pair = state.metric_pairs.get(what)
        if pair is None:
            pair = (self.metrics.counter(f"broker.{what}"),
                    self.metrics.counter(f"broker.tenant.{tenant}.{what}"))
            state.metric_pairs[what] = pair
        pair[0].inc()
        pair[1].inc()

    # -- the serving path --------------------------------------------------

    def admit(self, meta: wire.TenantEnvelope, op: str,
              nbytes: int) -> Admission:
        """Admit one request or raise a retryable 429-style error.

        Raises :class:`QuotaExceeded` for unknown tenants, bad quota
        tokens, and bytes-in-flight overruns; :class:`ServiceBusy` with
        a ``retry_after_s`` refill hint for token-bucket shedding and
        full queues.  Never touches the sealed payload.
        """
        try:
            spec = self.registry.resolve(meta)
        except ServiceBusy as exc:
            self.metrics.counter("broker.shed").inc()
            self.metrics.counter("broker.rejected_auth").inc()
            exc.retry_after_s = None
            raise
        state = self._state(spec)
        wait = state.bucket.try_acquire()
        if wait > 0.0:
            self._count(state, spec.tenant, "shed")
            state.counters["shed_rate"] += 1
            raise ServiceBusy(
                f"tenant {spec.tenant!r} over its rate limit "
                f"({spec.rate:g} req/s)", retry_after_s=wait)
        if (state.bytes_in_flight > 0
                and state.bytes_in_flight + nbytes > spec.max_bytes_in_flight):
            self._count(state, spec.tenant, "shed")
            state.counters["shed_quota"] += 1
            raise QuotaExceeded(
                f"tenant {spec.tenant!r} has {state.bytes_in_flight}B in "
                f"flight; admitting {nbytes}B would exceed its "
                f"{spec.max_bytes_in_flight}B quota",
                retry_after_s=self.shed_retry_hint_s)
        ticket = self.scheduler.submit(spec.tenant, spec.priority_code,
                                       nbytes, weight=spec.weight,
                                       max_queue=spec.max_queue)
        if ticket is None:
            self._count(state, spec.tenant, "shed")
            state.counters["shed_queue"] += 1
            depth = self.scheduler.queue_depth(spec.tenant,
                                               spec.priority_code)
            raise ServiceBusy(
                f"tenant {spec.tenant!r} queue is full ({depth} waiting)",
                retry_after_s=self.shed_retry_hint_s * (1 + depth / 8))
        with self._lock:
            state.bytes_in_flight += nbytes
        self._count(state, spec.tenant, "admitted")
        return Admission(spec, op, nbytes, ticket, self._clock())

    def begin(self, admission: Admission) -> float:
        """Mark service start; returns queue wait for the slow-query log."""
        return self._clock() - admission.admitted_at

    def finish(self, admission: Admission, response_bytes: int = 0,
               queued_s: float = 0.0) -> None:
        """Release the slot and quota of a completed request."""
        self.scheduler.release(admission.ticket)
        state = self._states.get(admission.tenant)
        elapsed = self._clock() - admission.admitted_at
        if state is not None:
            with self._lock:
                state.bytes_in_flight = max(
                    0, state.bytes_in_flight - admission.nbytes)
            self._count(state, admission.tenant, "completed")
            state.counters["bytes_served"] += (admission.nbytes
                                               + response_bytes)
        self.slow_queries.record(admission.tenant, admission.op,
                                 elapsed, queued_s,
                                 admission.nbytes + response_bytes)

    # -- the ops surface ---------------------------------------------------

    def tenant_stats(self) -> dict:
        """Per-tenant admitted/shed/queued/in-flight snapshot."""
        sched = self.scheduler.stats()
        queued_by_tenant: Dict[str, int] = {}
        for per_class in sched["queued"].values():
            for tenant, depth in per_class.items():
                queued_by_tenant[tenant] = (
                    queued_by_tenant.get(tenant, 0) + depth)
        with self._lock:
            tenants = {
                tenant: dict(state.counters,
                             bytes_in_flight=state.bytes_in_flight,
                             queued=queued_by_tenant.get(tenant, 0))
                for tenant, state in sorted(self._states.items())
            }
        return {
            "tenants": tenants,
            "scheduler": sched,
            "slow_queries": self.slow_queries.entries(),
        }

    @classmethod
    def from_config(cls, config: dict,
                    metrics: Optional[MetricRegistry] = None
                    ) -> "RequestBroker":
        """Build from the validated bedrock ``tenants`` config section."""
        known = {"slots", "interactive_reserve", "quantum_bytes",
                 "slow_query_s", "shed_retry_hint_s", "registry", "default"}
        unknown = set(config) - known
        if unknown:
            raise ConfigError(
                f"unknown tenants settings: {sorted(unknown)}")
        return cls(
            registry=TenantRegistry.from_config(config),
            slots=int(config.get("slots", 8)),
            interactive_reserve=int(config.get("interactive_reserve", 2)),
            quantum_bytes=int(config.get("quantum_bytes", 4096)),
            slow_query_s=float(config.get("slow_query_s", 0.05)),
            shed_retry_hint_s=float(config.get("shed_retry_hint_s", 0.002)),
            metrics=metrics,
        )
