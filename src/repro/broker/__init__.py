"""The multi-tenant request broker (the serving tier of the service).

Production HEPnOS is a *shared* service: whole collaborations hit the
same providers.  This package is the tier that makes that safe --
clients open a tenant session (:func:`repro.hepnos.connect`) and every
RPC carries a tenant envelope that the server-side
:class:`RequestBroker` runs through admission control (per-tenant
token-bucket rate limits, bytes-in-flight quotas) and weighted
fair-share scheduling (deficit round-robin across tenants, strict
priority with a reserved slice for interactive classes) before any
payload is decoded.  Load is shed with retryable 429-style errors
(:class:`~repro.errors.ServiceBusy`) carrying server-supplied
``retry_after_s`` hints that :class:`~repro.faults.RetryPolicy` honors.

Wiring: :class:`~repro.bedrock.BedrockServer` builds one broker per
server from the ``tenants`` config section and hands it to every
:class:`~repro.yokan.YokanProvider`; ``repro-hepnos tenants`` renders
the ops surface (per-tenant gauges + slow-query log).
"""

from repro.broker.core import (
    Admission,
    RequestBroker,
    SlowQueryLog,
    TokenBucket,
)
from repro.broker.scheduler import FairShareScheduler, Ticket
from repro.broker.tenants import TenantRegistry, TenantSpec

__all__ = [
    "Admission",
    "FairShareScheduler",
    "RequestBroker",
    "SlowQueryLog",
    "TenantRegistry",
    "TenantSpec",
    "Ticket",
    "TokenBucket",
]
