"""Figure 2: strong scaling of the three workflows (paper section IV-E).

Regenerates: throughput (slices/s) vs nodes in {16, 32, 64, 128, 256}
on the 7716-file / 17,437,656-event sample, for the traditional
file-based workflow and HEPnOS with in-memory and RocksDB-like (LSM)
backends.

Shape claims asserted (absolute numbers are simulator-scale, not
Theta-scale):

1. both HEPnOS variants beat the file-based workflow at every node count;
2. LSM matches in-memory at <= 32 nodes, then the gap opens, reaching
   ~2x at 256 nodes;
3. in-memory strong-scaling efficiency at 128 nodes is ~85%;
4. the file-based workflow flattens once cores outnumber files.
"""

from conftest import bench_repeats

from repro.perf import (
    check_figure2_shape,
    format_records,
    run_strong_scaling,
)


def run_figure2():
    records = run_strong_scaling(repeats=bench_repeats())
    checks = check_figure2_shape(records)
    return records, checks


def test_fig2_strong_scaling(benchmark):
    records, checks = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    print("\n== Figure 2: throughput vs nodes (17.44M-event sample) ==")
    print(format_records(records))
    # Mechanism: where the time goes for each backend at both ends.
    from repro.perf import HEPnOSModel, LARGE

    model = HEPnOSModel()
    print("\nresource utilization (who binds):")
    for nodes in (16, 256):
        for backend in ("map", "lsm"):
            result = model.simulate(nodes, LARGE, backend=backend)
            util = ", ".join(
                f"{k}={v:.0%}" for k, v in result.utilization.items()
            )
            print(f"  {result.system:<11} @{nodes:>3} nodes: {util}")
    print("\nshape checks:")
    for name, value in checks.items():
        print(f"  {name}: {value}")
    failed = [k for k, v in checks.items()
              if not isinstance(v, float) and not bool(v)]
    assert not failed, f"figure 2 shape checks failed: {failed}"
