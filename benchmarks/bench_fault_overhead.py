"""Cost of the fault-tolerance machinery when nothing is failing.

The robustness stack (retry policies, wire checksums, fault-model
hooks) sits on every RPC.  The acceptance bound is <2% end-to-end
overhead on the PEP hot path with no faults injected -- the printed
numbers are the real measurement; the assertions keep generous noise
margins so the bench stays stable in CI.

Three measurements:

1. PEP pass with the default client retry policy vs a no-retry client
   (the policy wrapper's per-call cost).
2. PEP pass with a no-op :class:`~repro.mercury.FaultModel` installed
   vs the stock fabric default (the fabric hook cost -- the default IS
   a no-op model, so this is pure noise).
3. Micro-benchmarks of one sealed round-trip's checksum work and one
   ``RetryPolicy.call`` of a trivially-succeeding function.
"""

import time
import zlib

import pytest

from repro.faults import RetryPolicy
from repro.hepnos import ParallelEventProcessor, PEPOptions, WriteBatch, \
    vector_of
from repro.mercury.fabric import FaultModel
from repro.serial import serializable

N_EVENTS = 400


@serializable("bench.FaultOverheadSlice")
class FaultOverheadSlice:
    def __init__(self, sid=0):
        self.sid = sid

    def serialize(self, ar):
        self.sid = ar.io(self.sid)


@pytest.fixture()
def dataset(datastore):
    ds = datastore.create_dataset("bench/fault-overhead")
    with WriteBatch(datastore) as batch:
        run = ds.create_run(1, batch=batch)
        for s in range(4):
            subrun = run.create_subrun(s, batch=batch)
            for e in range(N_EVENTS // 4):
                event = subrun.create_event(e, batch=batch)
                event.store([FaultOverheadSlice(s * 1000 + e)], label="s",
                            batch=batch)
    return ds


def _pep_pass(datastore, dataset, input_batch=64):
    pep = ParallelEventProcessor(
        datastore, options=PEPOptions(input_batch_size=input_batch),
        products=[(vector_of(FaultOverheadSlice), "s")],
    )
    count = {"n": 0}
    pep.process(dataset, lambda ev: count.__setitem__("n", count["n"] + 1))
    return count["n"]


def _timed_passes(datastore, dataset, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        processed = _pep_pass(datastore, dataset)
        best = min(best, time.perf_counter() - t0)
        assert processed == N_EVENTS
    return best


def test_retry_policy_overhead_under_2_percent(benchmark, datastore,
                                               dataset):
    """PEP pass: default retry policy vs a bare no-retry client."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _pep_pass(datastore, dataset)  # warm-up

    with_policy = _timed_passes(datastore, dataset)
    saved = datastore.retry_policy
    datastore.retry_policy = RetryPolicy.none()
    try:
        without_policy = _timed_passes(datastore, dataset)
    finally:
        datastore.retry_policy = saved
    overhead = with_policy / without_policy - 1
    print(f"\n[retry] none: {without_policy * 1e3:.1f}ms/pass, "
          f"default policy: {with_policy * 1e3:.1f}ms/pass "
          f"(+{overhead * 100:.1f}%)")
    # Target is <2%; assert with noise headroom.
    assert with_policy < without_policy * 1.25


def test_noop_fault_model_overhead_is_noise(benchmark, datastore, dataset,
                                            fabric):
    """PEP pass with an explicitly-installed no-op fault model."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _pep_pass(datastore, dataset)  # warm-up

    stock = _timed_passes(datastore, dataset)
    fabric.fault_model = FaultModel()
    noop = _timed_passes(datastore, dataset)
    overhead = noop / stock - 1
    print(f"\n[fault-model] stock: {stock * 1e3:.1f}ms/pass, "
          f"no-op model: {noop * 1e3:.1f}ms/pass "
          f"(+{overhead * 100:.1f}%)")
    assert noop < stock * 1.25


def test_checksum_seal_unseal_microbench(benchmark):
    """One wire seal+unseal round trip on a 4 KiB payload."""
    from repro.yokan import wire

    body = bytes(range(256)) * 16

    def round_trip():
        assert wire.unseal(wire.seal(body)) == body

    benchmark(round_trip)
    # Sanity: the checksum is plain crc32, not something expensive.
    assert wire.checksum(body) == zlib.crc32(body) & 0xFFFFFFFF


def test_retry_call_fast_path_microbench(benchmark):
    """One ``RetryPolicy.call`` of a function that succeeds immediately."""
    policy = RetryPolicy()

    def fast_path():
        return policy.call(lambda: 42)

    assert benchmark(fast_path) == 42


# -- standalone driver (no pytest) -------------------------------------------

#: gate for the committed baseline: fault-path machinery may not cost
#: more than this fraction of a PEP pass fault-free (target is 2%; the
#: margin absorbs run-to-run noise exactly like the in-test asserts)
FAULT_OVERHEAD_GATE = 0.25


def _standalone_world():
    from repro.bedrock import BedrockServer, default_hepnos_config
    from repro.hepnos import DataStore
    from repro.mercury import Fabric

    fabric = Fabric(threaded=True)
    servers = [BedrockServer(fabric, default_hepnos_config(
        f"sm://node{i}/hepnos", num_providers=4, event_databases=4,
        product_databases=4, run_databases=2, subrun_databases=2,
        dataset_databases=1)) for i in range(2)]
    fabric.runtime.start()
    return fabric, DataStore.connect(fabric, servers)


def _build_dataset(datastore):
    ds = datastore.create_dataset("bench/fault-overhead")
    with WriteBatch(datastore) as batch:
        run = ds.create_run(1, batch=batch)
        for s in range(4):
            subrun = run.create_subrun(s, batch=batch)
            for e in range(N_EVENTS // 4):
                event = subrun.create_event(e, batch=batch)
                event.store([FaultOverheadSlice(s * 1000 + e)], label="s",
                            batch=batch)
    return ds


def _best_of(fn, rounds=5):
    fn()  # warm-up
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_benches() -> dict:
    """The same measurements as the pytest benches, callable from
    ``run_all.py`` so fault-path overhead lands in the committed
    baseline."""
    from repro.yokan import wire

    fabric, datastore = _standalone_world()
    dataset = _build_dataset(datastore)
    _pep_pass(datastore, dataset)  # warm-up

    with_policy = _timed_passes(datastore, dataset)
    saved = datastore.retry_policy
    datastore.retry_policy = RetryPolicy.none()
    try:
        without_policy = _timed_passes(datastore, dataset)
    finally:
        datastore.retry_policy = saved
    retry_overhead = with_policy / without_policy - 1
    print(f"[retry-overhead] none: {without_policy * 1e3:.1f}ms/pass, "
          f"default: {with_policy * 1e3:.1f}ms/pass "
          f"(+{retry_overhead * 100:.1f}%)")

    stock = _timed_passes(datastore, dataset)
    fabric.fault_model = FaultModel()
    noop = _timed_passes(datastore, dataset)
    model_overhead = noop / stock - 1
    print(f"[fault-model-overhead] stock: {stock * 1e3:.1f}ms/pass, "
          f"no-op model: {noop * 1e3:.1f}ms/pass "
          f"(+{model_overhead * 100:.1f}%)")
    fabric.runtime.shutdown()

    body = bytes(range(256)) * 16

    def seal_hundred():
        for _ in range(100):
            assert wire.unseal(wire.seal(body)) == body

    seal_s = _best_of(seal_hundred) / 100

    policy = RetryPolicy()

    def retry_hundred():
        for _ in range(100):
            policy.call(lambda: 42)

    retry_s = _best_of(retry_hundred) / 100

    return {
        "fault_overhead_gate": FAULT_OVERHEAD_GATE,
        "benches": {
            "retry_policy_overhead": {
                "ops_per_s": N_EVENTS / with_policy,
                "bytes_per_s": 0.0,
                "with_policy_seconds": with_policy,
                "without_policy_seconds": without_policy,
                "overhead": retry_overhead,
            },
            "noop_fault_model_overhead": {
                "ops_per_s": N_EVENTS / noop,
                "bytes_per_s": 0.0,
                "stock_seconds": stock,
                "noop_seconds": noop,
                "overhead": model_overhead,
            },
            "wire_seal_unseal_micro": {
                "ops_per_s": 1.0 / seal_s,
                "bytes_per_s": 2 * len(body) / seal_s,
                "seconds_per_roundtrip": seal_s,
            },
            "retry_call_fast_path_micro": {
                "ops_per_s": 1.0 / retry_s,
                "bytes_per_s": 0.0,
                "seconds_per_call": retry_s,
            },
        },
    }


def evaluate_gates(results: dict) -> list:
    """Return human-readable gate failures (empty == pass)."""
    gate = results["fault_overhead_gate"]
    failures = []
    for name in ("retry_policy_overhead", "noop_fault_model_overhead"):
        overhead = results["benches"][name]["overhead"]
        if overhead > gate:
            failures.append(f"{name}: +{overhead * 100:.1f}% on the PEP "
                            f"hot path, gate is {gate * 100:.0f}%")
    return failures
