"""Cost of the fault-tolerance machinery when nothing is failing.

The robustness stack (retry policies, wire checksums, fault-model
hooks) sits on every RPC.  The acceptance bound is <2% end-to-end
overhead on the PEP hot path with no faults injected -- the printed
numbers are the real measurement; the assertions keep generous noise
margins so the bench stays stable in CI.

Three measurements:

1. PEP pass with the default client retry policy vs a no-retry client
   (the policy wrapper's per-call cost).
2. PEP pass with a no-op :class:`~repro.mercury.FaultModel` installed
   vs the stock fabric default (the fabric hook cost -- the default IS
   a no-op model, so this is pure noise).
3. Micro-benchmarks of one sealed round-trip's checksum work and one
   ``RetryPolicy.call`` of a trivially-succeeding function.
"""

import time
import zlib

import pytest

from repro.faults import RetryPolicy
from repro.hepnos import ParallelEventProcessor, WriteBatch, vector_of
from repro.mercury.fabric import FaultModel
from repro.serial import serializable

N_EVENTS = 400


@serializable("bench.FaultOverheadSlice")
class FaultOverheadSlice:
    def __init__(self, sid=0):
        self.sid = sid

    def serialize(self, ar):
        self.sid = ar.io(self.sid)


@pytest.fixture()
def dataset(datastore):
    ds = datastore.create_dataset("bench/fault-overhead")
    with WriteBatch(datastore) as batch:
        run = ds.create_run(1, batch=batch)
        for s in range(4):
            subrun = run.create_subrun(s, batch=batch)
            for e in range(N_EVENTS // 4):
                event = subrun.create_event(e, batch=batch)
                event.store([FaultOverheadSlice(s * 1000 + e)], label="s",
                            batch=batch)
    return ds


def _pep_pass(datastore, dataset, input_batch=64):
    pep = ParallelEventProcessor(
        datastore, input_batch_size=input_batch,
        products=[(vector_of(FaultOverheadSlice), "s")],
    )
    count = {"n": 0}
    pep.process(dataset, lambda ev: count.__setitem__("n", count["n"] + 1))
    return count["n"]


def _timed_passes(datastore, dataset, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        processed = _pep_pass(datastore, dataset)
        best = min(best, time.perf_counter() - t0)
        assert processed == N_EVENTS
    return best


def test_retry_policy_overhead_under_2_percent(benchmark, datastore,
                                               dataset):
    """PEP pass: default retry policy vs a bare no-retry client."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _pep_pass(datastore, dataset)  # warm-up

    with_policy = _timed_passes(datastore, dataset)
    saved = datastore.retry_policy
    datastore.retry_policy = RetryPolicy.none()
    try:
        without_policy = _timed_passes(datastore, dataset)
    finally:
        datastore.retry_policy = saved
    overhead = with_policy / without_policy - 1
    print(f"\n[retry] none: {without_policy * 1e3:.1f}ms/pass, "
          f"default policy: {with_policy * 1e3:.1f}ms/pass "
          f"(+{overhead * 100:.1f}%)")
    # Target is <2%; assert with noise headroom.
    assert with_policy < without_policy * 1.25


def test_noop_fault_model_overhead_is_noise(benchmark, datastore, dataset,
                                            fabric):
    """PEP pass with an explicitly-installed no-op fault model."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _pep_pass(datastore, dataset)  # warm-up

    stock = _timed_passes(datastore, dataset)
    fabric.fault_model = FaultModel()
    noop = _timed_passes(datastore, dataset)
    overhead = noop / stock - 1
    print(f"\n[fault-model] stock: {stock * 1e3:.1f}ms/pass, "
          f"no-op model: {noop * 1e3:.1f}ms/pass "
          f"(+{overhead * 100:.1f}%)")
    assert noop < stock * 1.25


def test_checksum_seal_unseal_microbench(benchmark):
    """One wire seal+unseal round trip on a 4 KiB payload."""
    from repro.yokan import wire

    body = bytes(range(256)) * 16

    def round_trip():
        assert wire.unseal(wire.seal(body)) == body

    benchmark(round_trip)
    # Sanity: the checksum is plain crc32, not something expensive.
    assert wire.checksum(body) == zlib.crc32(body) & 0xFFFFFFFF


def test_retry_call_fast_path_microbench(benchmark):
    """One ``RetryPolicy.call`` of a function that succeeds immediately."""
    policy = RetryPolicy()

    def fast_path():
        return policy.call(lambda: 42)

    assert benchmark(fast_path) == 42
