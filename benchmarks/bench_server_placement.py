"""A-placement-topo ablation: where to put the service nodes.

The paper deploys one HEPnOS server per 8 nodes.  With the dragonfly
topology modeled explicitly, the *location* of those server nodes
matters once bulk traffic approaches fabric limits: spreading servers
across groups uses every group's global links, while packing them into
few groups funnels all traffic through those groups' links.  Adaptive
(UGAL) routing partially rescues the packed layout.

This regime uses heavier slices (20 kB) and slower global links so the
fabric, not the client CPUs, is the binding resource.
"""

import pytest

from repro.perf import HEPnOSModel, LARGE
from repro.perf.workload import CostModel
from repro.sim.network import DragonflyConfig

TOPOLOGY = DragonflyConfig(groups=8, routers_per_group=4, nodes_per_router=2,
                           injection_bandwidth=8e9, local_bandwidth=5e9,
                           global_bandwidth=2e9)
COSTS = CostModel(t_select=0.2e-3, bytes_per_slice=20000)
DATASET = LARGE.scaled(1 / 16)
NODES = 64


def simulate(placement: str, adaptive: bool = True):
    model = HEPnOSModel(costs=COSTS)
    return model.simulate(NODES, DATASET, backend="map", topology=TOPOLOGY,
                          server_placement=placement,
                          adaptive_routing=adaptive)


@pytest.mark.parametrize("placement", ["spread", "packed"])
def test_placement_throughput(benchmark, placement):
    result = benchmark.pedantic(simulate, args=(placement,),
                                rounds=1, iterations=1)
    print(f"\n[{placement}] {result.throughput:,.0f} slices/s")


def test_spread_beats_packed(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    spread = simulate("spread").throughput
    packed = simulate("packed").throughput
    print(f"\nspread {spread:,.0f} vs packed {packed:,.0f} "
          f"({spread / packed:.2f}x)")
    assert spread > 1.5 * packed


def test_adaptive_routing_rescues_packed(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with_adaptive = simulate("packed", adaptive=True).throughput
    minimal_only = simulate("packed", adaptive=False).throughput
    print(f"\npacked: adaptive {with_adaptive:,.0f} vs minimal "
          f"{minimal_only:,.0f} (+{with_adaptive / minimal_only - 1:.0%})")
    assert with_adaptive >= minimal_only


def test_flat_model_close_to_spread_when_cpu_bound(benchmark):
    """With the paper's parameters (CPU-bound), the flat NIC model and
    the full dragonfly agree -- justifying the flat default in the
    figure sweeps."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    topo = DragonflyConfig(groups=8, routers_per_group=4, nodes_per_router=2)
    model = HEPnOSModel()
    flat = model.simulate(NODES, DATASET, backend="map").throughput
    dragonfly = model.simulate(NODES, DATASET, backend="map", topology=topo,
                               server_placement="spread").throughput
    print(f"\nflat {flat:,.0f} vs dragonfly {dragonfly:,.0f} "
          f"({abs(flat - dragonfly) / flat:.1%} apart)")
    assert abs(flat - dragonfly) / flat < 0.1
