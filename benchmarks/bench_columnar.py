#!/usr/bin/env python
"""Columnar data-plane benchmark and CI perf gate.

Compares the vectorized analysis path (server-side ``scan_columns``
projection + numpy Cut evaluation over :class:`ColumnBlock` arrays)
against the per-event fast path it accelerates.  Three measurements:

1. **Candidate-selection speedup**: the selection kernel -- load the
   slices of every event and evaluate the NOvA nue candidate cut --
   per-event (packed whole-object load + python Cut over each slice)
   vs columnar (``load_products_columnar`` + one numpy mask), client
   product cache disabled so every round pays the wire and the decode.
   Gated at 10x (full) / 3x (``--quick``); the accepted
   ``(event, slice)`` sets must additionally be byte-identical.  The
   end-to-end :class:`HEPnOSWorkflow` selection speedup (which also
   pays event listing and dispatch machinery) is reported unguarded.
2. **Projection bytes**: fabric bytes moved by a 3-field
   ``load_products_columnar`` vs whole-object packed loads of the same
   events.  Gated at <= 25%.
3. **Selection identity** (untimed): vectorized selection fault-free,
   under the seeded chaos schedule, and concurrent with a live
   1 -> 4 shard rescale must accept the byte-identical event set of
   the quiet per-event run.

Exit status is nonzero if any gate fails, so CI can run it directly::

    PYTHONPATH=src python benchmarks/bench_columnar.py --quick
    PYTHONPATH=src python benchmarks/bench_columnar.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from typing import Optional, Sequence

from repro.bedrock import BedrockServer, default_hepnos_config
from repro.faults.chaos import build_schedule, chaos_client_policy
from repro.hepnos import (
    DataStore,
    PEPOptions,
    ProductCacheOptions,
    vector_of,
)
from repro.mercury import Fabric
from repro.mercury.fabric import FaultModel
from repro.nova.datamodel import SliceData
from repro.nova.files import generate_file_set
from repro.nova.generator import GeneratorConfig
from repro.serial import dumps
from repro.workflows.hepnos import HEPnOSWorkflow

QUICK = dict(files=2, mean_events=64, select_rounds=3,
             bytes_events=48, id_files=2, id_events=24,
             speedup_gate=3.0)
FULL = dict(files=4, mean_events=192, select_rounds=5,
            bytes_events=128, id_files=2, id_events=24,
            speedup_gate=10.0)
BYTES_GATE = 0.25
PROJECTED_FIELDS = ["nhit", "cal_e", "cvn_e"]


def _deploy(fabric: Fabric, num_servers: int = 2, **overrides) -> list:
    config = dict(num_providers=2, event_databases=2, product_databases=2,
                  run_databases=1, subrun_databases=1)
    config.update(overrides)
    servers = [
        BedrockServer(fabric, default_hepnos_config(
            f"sm://node{i}/hepnos", **config,
        ))
        for i in range(num_servers)
    ]
    fabric.runtime.start()
    return servers


def _sample(params: dict, workdir: str, tag: str = "files"):
    return generate_file_set(
        f"{workdir}/{tag}", num_files=params["files"],
        mean_events_per_file=params["mean_events"],
        config=GeneratorConfig(signal_fraction=0.05, events_per_subrun=32,
                               subruns_per_run=8),
    )


def _workflow(datastore, columnar: bool) -> HEPnOSWorkflow:
    return HEPnOSWorkflow(
        datastore, "nova/columnar",
        pep_options=PEPOptions(input_batch_size=1024,
                               dispatch_batch_size=256,
                               columnar_loads=columnar),
    )


def _selection_bytes(result) -> bytes:
    return dumps(sorted(result.accepted_ids))


# -- 1. candidate-selection speedup ------------------------------------------


def bench_selection_speedup(params: dict, workdir: str) -> dict:
    import numpy as np

    from repro.nova.cafana import nue_candidate_cut
    from repro.serial.archive import registered_type

    sample = _sample(params, workdir)
    fabric = Fabric(threaded=True)
    servers = _deploy(fabric)
    try:
        # Cache off: every round pays the wire; the comparison is the
        # data plane plus the cut evaluation, not the client LRU.
        datastore = DataStore.connect(
            fabric, servers,
            product_cache=ProductCacheOptions(enabled=False))
        _workflow(datastore, columnar=False).ingest(sample.paths,
                                                    num_ranks=1)
        # Ingest registers the generated slice class under its file
        # type name; look it up rather than assuming the SDK class.
        slc = registered_type("rec.slc")
        spec = vector_of(slc)
        dataset = datastore["nova/columnar"]
        keys = [ev.key for run in dataset.runs()
                for sr in run.subruns() for ev in sr.events()]
        cut = nue_candidate_cut
        columns = sorted(set(cut.columns) | {"slice_id"})
        from repro.hepnos.product import product_type_name
        packed_spec = (product_type_name(spec), "")

        def per_event_kernel() -> list:
            products = datastore.load_products_packed(
                keys, [(spec, "")])[packed_spec]
            accepted = []
            for key, slices in zip(keys, products):
                if slices is None:
                    continue
                for s in slices:
                    if cut(s):
                        accepted.append((key, int(s.slice_id)))
            return accepted

        def columnar_kernel() -> list:
            block = datastore.load_products_columnar(
                keys, spec, columns, label="")
            mask = cut.mask(block.table)
            ids = block.column("slice_id")[mask]
            row_event = np.repeat(np.arange(len(block)),
                                  np.diff(block.offsets))
            accepted = [(keys[e], int(s))
                        for e, s in zip(row_event[mask], ids)]
            for i, slices in block.raw.items():
                for s in slices:
                    if cut(s):
                        accepted.append((keys[i], int(s.slice_id)))
            return accepted

        def timed(kernel) -> tuple:
            blob = dumps(sorted(kernel()))  # warm-up
            best = float("inf")
            for _ in range(params["select_rounds"]):
                t0 = time.perf_counter()
                accepted = kernel()
                best = min(best, time.perf_counter() - t0)
                assert dumps(sorted(accepted)) == blob
            return best, blob

        slow, slow_blob = timed(per_event_kernel)
        fast, fast_blob = timed(columnar_kernel)

        # End-to-end workflow selection (listing + PEP dispatch +
        # kernel): reported for context, not gated -- the shared
        # per-event machinery bounds it well below the kernel ratio.
        def select_s(columnar: bool) -> float:
            workflow = _workflow(datastore, columnar)
            workflow.select(num_ranks=1)  # warm-up
            t0 = time.perf_counter()
            result = workflow.select(num_ranks=1)
            return time.perf_counter() - t0, result

        e2e_slow, _ = select_s(False)
        e2e_fast, result = select_s(True)
    finally:
        fabric.runtime.shutdown()
    speedup = slow / fast
    identical = slow_blob == fast_blob
    print(f"[columnar-selection] {len(keys)} events, "
          f"{result.slices_examined} slices: per-event kernel "
          f"{slow * 1e3:.2f}ms, columnar kernel {fast * 1e3:.2f}ms "
          f"({speedup:.2f}x, identical={identical}); end-to-end "
          f"{e2e_slow * 1e3:.1f}ms -> {e2e_fast * 1e3:.1f}ms "
          f"({e2e_slow / e2e_fast:.2f}x)")
    return {
        "ops_per_s": len(keys) / fast,
        "bytes_per_s": 0.0,
        "fast_s": fast,
        "fallback_s": slow,
        "speedup": speedup,
        "identical": identical,
        "events": len(keys),
        "slices": result.slices_examined,
        "accepted": len(result.accepted_ids),
        "end_to_end_speedup": e2e_slow / e2e_fast,
    }


# -- 2. projection bytes ------------------------------------------------------


def bench_projection_bytes(params: dict) -> dict:
    from repro.nova.generator import NovaGenerator

    num_events = params["bytes_events"]
    fabric = Fabric(threaded=True)
    servers = _deploy(fabric)
    try:
        datastore = DataStore.connect(
            fabric, servers,
            product_cache=ProductCacheOptions(enabled=False))
        subrun = (datastore.create_dataset("bench/colbytes")
                  .create_run(1).create_subrun(1))
        gen = NovaGenerator()
        keys = []
        total_slices = 0
        for i in range(num_events):
            slices = gen.slices_for_event(1, 1, i)
            subrun.create_event(i).store(slices, label="")
            keys.append(subrun.event(i).key)
            total_slices += len(slices)
        spec = (vector_of(SliceData), "")
        stats = fabric.stats

        def moved(fn) -> tuple:
            fn()  # warm the server projection cache / scan path
            best_s, best_b = float("inf"), 0
            for _ in range(3):
                before = stats.total_bytes
                t0 = time.perf_counter()
                fn()
                elapsed = time.perf_counter() - t0
                delta = stats.total_bytes - before
                if elapsed < best_s:
                    best_s, best_b = elapsed, delta
            return best_b, best_s

        packed_bytes, packed_s = moved(
            lambda: datastore.load_products_packed(keys, [spec]))
        projected_bytes, projected_s = moved(
            lambda: datastore.load_products_columnar(
                keys, vector_of(SliceData), PROJECTED_FIELDS, label=""))
    finally:
        fabric.runtime.shutdown()
    ratio = projected_bytes / packed_bytes
    print(f"[columnar-bytes] {num_events} events, {total_slices} slices, "
          f"{len(PROJECTED_FIELDS)} fields: projected "
          f"{projected_bytes} B vs packed {packed_bytes} B "
          f"({100 * ratio:.1f}% on the wire)")
    return {
        "ops_per_s": num_events / projected_s,
        "bytes_per_s": projected_bytes / projected_s,
        "projected_bytes": projected_bytes,
        "packed_bytes": packed_bytes,
        "ratio": ratio,
        "events": num_events,
        "fields": list(PROJECTED_FIELDS),
    }


# -- 3. selection identity (fault-free, chaos, live rescale) ------------------


def check_selection_identity(params: dict, seed: int, workdir: str) -> dict:
    from repro.rescale import LiveRescaler, add_server

    id_params = dict(params, files=params["id_files"],
                     mean_events=params["id_events"])
    sample = _sample(id_params, workdir, tag="identity")
    policy = chaos_client_policy()
    blobs = {}

    def select_once(label: str, columnar: bool, with_chaos: bool = False,
                    live_grow: bool = False) -> None:
        fabric = Fabric(threaded=True)
        if live_grow:
            servers = _deploy(fabric, num_servers=1, num_providers=1,
                              event_databases=1, product_databases=1)
        else:
            servers = _deploy(fabric)
        datastore = DataStore.connect(fabric, servers, retry_policy=policy)
        workflow = HEPnOSWorkflow(
            datastore, "nova/columnar-id",
            pep_options=PEPOptions(input_batch_size=64,
                                   dispatch_batch_size=8,
                                   columnar_loads=columnar),
        )
        workflow.ingest(sample.paths, num_ranks=1)
        thread = None
        migration = {"error": None}
        if with_chaos:
            fabric.fault_model = build_schedule(
                seed, servers, drop=0.02, delay=0.0005, corrupt=0.01,
                crash_window=(10, 30), spike_window=(40, 44))
        if live_grow:
            joining = BedrockServer(fabric, default_hepnos_config(
                "sm://joining/hepnos", num_providers=3, event_databases=3,
                product_databases=3, run_databases=1, subrun_databases=1,
            ))
            rescaler = LiveRescaler(
                datastore, add_server(datastore.connection, joining),
                batch_size=16)

            def migrate() -> None:
                try:
                    rescaler.begin()
                    while rescaler.step():
                        time.sleep(0.002)
                    rescaler.commit()
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    migration["error"] = exc

            thread = threading.Thread(target=migrate, daemon=True,
                                      name="live-rescaler")
            thread.start()
        try:
            result = workflow.select(num_ranks=2)
        finally:
            if thread is not None:
                thread.join(timeout=120.0)
            fabric.fault_model = FaultModel()
        if migration["error"] is not None:
            raise migration["error"]
        blobs[label] = _selection_bytes(result)
        fabric.runtime.shutdown()

    select_once("per-event", columnar=False)
    select_once("columnar", columnar=True)
    select_once("columnar+chaos", columnar=True, with_chaos=True)
    select_once("columnar+rescale", columnar=True, live_grow=True)
    identical = len(set(blobs.values())) == 1
    print(f"[columnar-identity] selected-event sets byte-identical across "
          f"{sorted(blobs)}: {identical}")
    return {"identical": identical, "configurations": sorted(blobs),
            "chaos_seed": seed}


# -- harness ------------------------------------------------------------------


def run_benches(quick: bool, seed: int,
                workdir: Optional[str] = None) -> dict:
    params = QUICK if quick else FULL
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="bench-columnar-")
    return {
        "quick": quick,
        "speedup_gate": params["speedup_gate"],
        "bytes_gate": BYTES_GATE,
        "benches": {
            "columnar_selection": bench_selection_speedup(params, workdir),
            "columnar_bytes": bench_projection_bytes(params),
            "columnar_identity": check_selection_identity(
                params, seed, workdir),
        },
    }


def evaluate_gates(results: dict) -> list:
    failures = []
    benches = results["benches"]
    selection = benches["columnar_selection"]
    gate = results["speedup_gate"]
    if selection["speedup"] < gate:
        failures.append(
            f"columnar selection speedup {selection['speedup']:.2f}x "
            f"< {gate}x")
    if not selection["identical"]:
        failures.append("columnar selection accepted a different event set")
    ratio = benches["columnar_bytes"]["ratio"]
    if ratio > results["bytes_gate"]:
        failures.append(
            f"3-field projection shipped {100 * ratio:.1f}% of packed "
            f"bytes > {100 * results['bytes_gate']:.0f}%")
    if not benches["columnar_identity"]["identical"]:
        failures.append(
            "vectorized selection diverged under chaos or live rescale")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the columnar analysis path against the "
                    "per-event fast path and gate the speedup, the "
                    "projection bytes, and the selection identity.")
    parser.add_argument("--quick", action="store_true",
                        help="small corpus, 3x gate (CI perf smoke)")
    parser.add_argument("--seed", type=int, default=7,
                        help="chaos-schedule seed for the identity check "
                             "(default: 7)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the results as JSON")
    args = parser.parse_args(argv)

    results = run_benches(quick=args.quick, seed=args.seed)
    failures = evaluate_gates(results)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"results written to {args.json}")
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    if not failures:
        print("all columnar gates passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
