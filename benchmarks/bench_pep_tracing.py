"""Tracing-enabled variant of the PEP batch-size ablation.

Two questions:

1. What does a *captured* trace cost?  The PEP pass runs with a tracer
   installed (per-batch and per-event spans plus the full
   yokan/mercury chain) and reports the span count and slowdown.
2. What does the *disabled* instrumentation cost?  The contract is
   near-zero overhead when no tracer is installed; the micro-benchmark
   measures the guarded fast path and the PEP comparison asserts the
   end-to-end regression stays under 2% (with generous noise margin in
   the assertion; the printed numbers are the real measurement).
"""

import time

import pytest

from repro.hepnos import (
    ParallelEventProcessor,
    PEPOptions,
    WriteBatch,
    vector_of,
)
from repro.monitor import tracing
from repro.monitor.tracing import install_tracer, uninstall_tracer
from repro.serial import serializable

N_EVENTS = 400


@serializable("bench.TracedPepSlice")
class TracedPepSlice:
    def __init__(self, sid=0):
        self.sid = sid

    def serialize(self, ar):
        self.sid = ar.io(self.sid)


@pytest.fixture()
def dataset(datastore):
    ds = datastore.create_dataset("bench/pep-tracing")
    with WriteBatch(datastore) as batch:
        run = ds.create_run(1, batch=batch)
        for s in range(4):
            subrun = run.create_subrun(s, batch=batch)
            for e in range(N_EVENTS // 4):
                event = subrun.create_event(e, batch=batch)
                event.store([TracedPepSlice(s * 1000 + e)], label="s",
                            batch=batch)
    return ds


def _pep_pass(datastore, dataset, input_batch=64):
    pep = ParallelEventProcessor(
        datastore, options=PEPOptions(input_batch_size=input_batch),
        products=[(vector_of(TracedPepSlice), "s")],
    )
    count = {"n": 0}
    pep.process(dataset, lambda ev: count.__setitem__("n", count["n"] + 1))
    return count["n"]


def test_traced_pep_pass_collects_cross_layer_spans(benchmark, datastore,
                                                    dataset):
    """The instrumented PEP pass, tracer installed (the 'pay' side)."""

    def run():
        tracer = install_tracer()
        try:
            processed = _pep_pass(datastore, dataset)
        finally:
            uninstall_tracer()
        return processed, tracer.collector

    (processed, collector) = benchmark.pedantic(run, rounds=2, iterations=1)
    assert processed == N_EVENTS
    per_event = len(collector.find("pep.event"))
    print(f"\n[traced] {len(collector)} spans for {N_EVENTS} events "
          f"({per_event} pep.event spans)")
    assert per_event == N_EVENTS
    # The full cross-layer chain is present.
    for name in ("pep.process_batch", "pep.materialize",
                 "hepnos.load_products_bulk", "yokan.client.get_multi",
                 "mercury.forward", "yokan.provider.get_multi"):
        assert collector.find(name), f"missing {name} spans"


def test_disabled_tracing_overhead_under_2_percent(benchmark, datastore,
                                                   dataset):
    """PEP throughput with instrumentation present but no tracer."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert tracing.enabled is False

    def timed_passes(rounds=5):
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            processed = _pep_pass(datastore, dataset)
            best = min(best, time.perf_counter() - t0)
            assert processed == N_EVENTS
        return best

    _pep_pass(datastore, dataset)  # warm-up
    disabled = timed_passes()
    tracer = install_tracer()
    try:
        traced = timed_passes()
        spans = len(tracer.collector)
    finally:
        uninstall_tracer()
    print(f"\n[pep] disabled: {disabled * 1e3:.1f}ms/pass, "
          f"traced: {traced * 1e3:.1f}ms/pass "
          f"(+{(traced / disabled - 1) * 100:.1f}%, {spans} spans)")
    # The acceptance bound is <2% vs an uninstrumented build; comparing
    # against the traced run only demonstrates the flag short-circuits
    # the span machinery.  Keep a noise-tolerant sanity bound here.
    assert disabled < traced * 1.5


def test_null_span_fast_path_nanoseconds(benchmark):
    """Micro-benchmark: one disabled `span()` call (the per-op cost)."""
    assert tracing.enabled is False

    def disabled_span():
        with tracing.span("bench.op", key=1):
            pass

    benchmark(disabled_span)


def test_flag_guard_is_one_attribute_read(benchmark):
    """Micro-benchmark: the `if tracing.enabled` guard hot loops use."""
    assert tracing.enabled is False

    def guard():
        if tracing.enabled:  # pragma: no cover - disabled here
            raise AssertionError

    benchmark(guard)
