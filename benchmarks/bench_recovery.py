#!/usr/bin/env python
"""Recovery-time benchmarks: WAL replay, failover reads, WAL overhead.

Three measurements for the durability layer:

1. **WAL replay time vs dataset size** -- how long a restarted
   :class:`~repro.yokan.backends.wal.DurableBackend` takes to rebuild
   its state from checkpoint + log, per key and per byte.
2. **Failover read latency** -- per-event product load against a
   healthy primary vs against its promoted backup after the primary
   died with state loss.
3. **Fault-free WAL overhead** (gated): ingest + selection pass on a
   WAL-backed deployment vs a plain one, replication off.  The
   acceptance bound is <=10% overhead plus measured noise.

Run directly or through ``run_all.py``::

    PYTHONPATH=src python benchmarks/bench_recovery.py --quick
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from typing import Optional, Sequence

from repro.bedrock import BedrockServer, default_hepnos_config
from repro.faults.chaos import failover_client_policy
from repro.hepnos import DataStore, ParallelEventProcessor, PEPOptions, \
    WriteBatch, vector_of
from repro.hepnos.failover import enable_replication
from repro.mercury import Fabric
from repro.serial import serializable
from repro.yokan.backend import open_backend

#: gate: fault-free WAL cost on the ingest+selection path
WAL_OVERHEAD_GATE = 0.10

QUICK = {
    "replay_sizes": [2_000, 8_000],
    "events": 256,
    "rounds": 3,
    "reads": 64,
}
FULL = {
    "replay_sizes": [10_000, 40_000],
    "events": 1_024,
    "rounds": 5,
    "reads": 256,
}


@serializable("bench.RecoverySlice")
class RecoverySlice:
    def __init__(self, sid=0):
        self.sid = sid

    def serialize(self, ar):
        self.sid = ar.io(self.sid)


# -- 1. WAL replay time vs dataset size --------------------------------------


def bench_wal_replay(params: dict, workdir: str) -> dict:
    """Time a cold DurableBackend restart for growing datasets."""
    points = []
    for size in params["replay_sizes"]:
        wal_path = f"{workdir}/replay-{size}/db.wal"
        backend = open_backend("map", wal_path=wal_path)
        value = bytes(100)
        backend.put_multi([(b"key-%08d" % i, value) for i in range(size)])
        wal_bytes = backend.stats.wal_bytes
        backend.crash()

        t0 = time.perf_counter()
        recovered = open_backend("map", wal_path=wal_path)
        elapsed = time.perf_counter() - t0
        stats = recovered.stats
        assert stats.replayed_keys == size, (stats.replayed_keys, size)
        recovered.close()
        points.append({
            "keys": size,
            "wal_bytes": wal_bytes,
            "replay_seconds": elapsed,
            "keys_per_s": size / elapsed,
            "bytes_per_s": wal_bytes / elapsed,
        })
        print(f"[wal-replay] {size} keys ({wal_bytes} WAL bytes): "
              f"{elapsed * 1e3:.1f}ms "
              f"({size / elapsed / 1e3:.0f}k keys/s)")
    last = points[-1]
    return {"ops_per_s": last["keys_per_s"],
            "bytes_per_s": last["bytes_per_s"],
            "points": points}


# -- 2. failover read latency -------------------------------------------------


def _replicated_world(params: dict):
    fabric = Fabric(threaded=True)
    servers = [BedrockServer(fabric, default_hepnos_config(
        f"sm://node{i}/hepnos", num_providers=2, event_databases=2,
        product_databases=2, run_databases=1, subrun_databases=1,
        replication=2)) for i in range(2)]
    fabric.runtime.start()
    connection = enable_replication(servers, replication=2)
    datastore = DataStore.connect(fabric, connection,
                                  retry_policy=failover_client_policy())
    return fabric, servers, datastore


def bench_failover_latency(params: dict) -> dict:
    """Per-event load latency: healthy primary vs promoted backup."""
    fabric, servers, datastore = _replicated_world(params)
    n = params["events"]
    ds = datastore.create_dataset("bench/failover")
    with WriteBatch(datastore) as batch:
        subrun = ds.create_run(1, batch=batch).create_subrun(1, batch=batch)
        for e in range(n):
            event = subrun.create_event(e, batch=batch)
            event.store([RecoverySlice(e)], label="s", batch=batch)
    datastore.sync_service()
    subrun = ds[1][1]
    reads = min(params["reads"], n)
    vec = vector_of(RecoverySlice)

    def timed_reads() -> float:
        t0 = time.perf_counter()
        for e in range(reads):
            subrun[e].load(vec, label="s")
        return (time.perf_counter() - t0) / reads

    timed_reads()  # warm-up
    healthy = min(timed_reads() for _ in range(params["rounds"]))
    servers[1].crash(lose_state=True)
    timed_reads()  # first pass absorbs the giveup + promotion
    failed_over = min(timed_reads() for _ in range(params["rounds"]))
    activated = datastore.metrics.counter("hepnos.failover.activated").value
    fabric.runtime.shutdown()
    print(f"[failover-read] healthy: {healthy * 1e6:.1f}us/read, "
          f"failed-over: {failed_over * 1e6:.1f}us/read "
          f"(x{failed_over / healthy:.2f}, {activated} promotions)")
    return {
        "ops_per_s": 1.0 / failed_over,
        "bytes_per_s": 0.0,
        "healthy_s_per_read": healthy,
        "failed_over_s_per_read": failed_over,
        "slowdown": failed_over / healthy,
        "promotions": activated,
    }


# -- 3. fault-free WAL overhead (gated) ---------------------------------------


def _ingest_select_pass(durability_root: Optional[str],
                        params: dict) -> float:
    """One fresh deployment: timed ingest + PEP selection pass."""
    fabric = Fabric(threaded=True)
    servers = []
    for i in range(2):
        kwargs = dict(num_providers=2, event_databases=2,
                      product_databases=2, run_databases=1,
                      subrun_databases=1)
        if durability_root is not None:
            kwargs["durability_root"] = f"{durability_root}/node{i}"
        servers.append(BedrockServer(fabric, default_hepnos_config(
            f"sm://node{i}/hepnos", **kwargs)))
    fabric.runtime.start()
    datastore = DataStore.connect(fabric, servers)
    n = params["events"]
    t0 = time.perf_counter()
    ds = datastore.create_dataset("bench/wal-overhead")
    with WriteBatch(datastore) as batch:
        run = ds.create_run(1, batch=batch)
        for s in range(4):
            subrun = run.create_subrun(s, batch=batch)
            for e in range(n // 4):
                event = subrun.create_event(e, batch=batch)
                event.store([RecoverySlice(s * 10_000 + e)], label="s",
                            batch=batch)
    pep = ParallelEventProcessor(
        datastore, options=PEPOptions(input_batch_size=64),
        products=[(vector_of(RecoverySlice), "s")])
    count = {"n": 0}
    pep.process(ds, lambda ev: count.__setitem__("n", count["n"] + 1))
    elapsed = time.perf_counter() - t0
    assert count["n"] == (n // 4) * 4
    fabric.runtime.shutdown()
    return elapsed


def bench_wal_overhead(params: dict, workdir: str) -> dict:
    """Ingest + selection: WAL on (replication 1) vs plain backends."""
    rounds = params["rounds"]
    _ingest_select_pass(None, params)  # warm-up
    plain = [_ingest_select_pass(None, params) for _ in range(rounds)]
    durable = []
    for i in range(rounds):
        root = f"{workdir}/overhead-{i}"
        durable.append(_ingest_select_pass(root, params))
        shutil.rmtree(root, ignore_errors=True)
    best_plain, best_durable = min(plain), min(durable)
    # Run-to-run noise on the plain path widens the acceptance gate the
    # same way bench_dataplane's cache gate does.
    noise = max(plain) / best_plain - 1
    overhead = best_durable / best_plain - 1
    print(f"[wal-overhead] plain: {best_plain * 1e3:.1f}ms, "
          f"wal: {best_durable * 1e3:.1f}ms "
          f"(+{overhead * 100:.1f}%, noise {noise * 100:.1f}%)")
    n = params["events"]
    return {
        "ops_per_s": n / best_durable,
        "bytes_per_s": 0.0,
        "plain_seconds": best_plain,
        "durable_seconds": best_durable,
        "overhead": overhead,
        "noise": noise,
    }


# -- driver ------------------------------------------------------------------


def run_benches(quick: bool, workdir: Optional[str] = None) -> dict:
    params = QUICK if quick else FULL
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="hepnos-recovery-")
    return {
        "quick": quick,
        "wal_overhead_gate": WAL_OVERHEAD_GATE,
        "benches": {
            "wal_replay": bench_wal_replay(params, workdir),
            "failover_read": bench_failover_latency(params),
            "wal_overhead": bench_wal_overhead(params, workdir),
        },
    }


def evaluate_gates(results: dict) -> list:
    """Return human-readable gate failures (empty == pass)."""
    failures = []
    bench = results["benches"]["wal_overhead"]
    allowed = results["wal_overhead_gate"] + bench["noise"]
    if bench["overhead"] > allowed:
        failures.append(
            f"wal_overhead: WAL costs {bench['overhead'] * 100:.1f}% "
            f"fault-free, gate is {allowed * 100:.1f}% "
            f"(10% + measured noise)")
    if results["benches"]["failover_read"]["promotions"] < 1:
        failures.append("failover_read: no backup promotion observed; "
                        "the failed-over timing measured nothing")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark WAL replay, failover reads, and the "
                    "fault-free WAL overhead gate.")
    parser.add_argument("--quick", action="store_true",
                        help="small corpus (CI smoke)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the results as JSON")
    args = parser.parse_args(argv)
    results = run_benches(quick=args.quick)
    failures = evaluate_gates(results)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
