"""A-tune ablation: configuration autotuning over the simulator.

The paper used ML-based autotuning [6] to pick the deployed
configuration (databases, batch sizes).  This bench compares tuners on
the simulated-throughput objective and reports what they find relative
to the paper's hand-tuned configuration.
"""

import pytest

from repro.perf.workload import LARGE
from repro.tuning import (
    EvolutionTuner,
    HEPNOS_SPACE,
    HillClimb,
    RandomSearch,
    hepnos_objective,
)
from repro.tuning.objective import PAPER_CONFIG

DATASET = LARGE.scaled(1 / 64)
NODES = 64


def objective(config):
    return hepnos_objective(config, nodes=NODES, dataset=DATASET)


@pytest.mark.parametrize("tuner_cls", [RandomSearch, HillClimb,
                                       EvolutionTuner])
def test_tuner_comparison(benchmark, tuner_cls):
    def run():
        tuner = tuner_cls(HEPNOS_SPACE, objective, budget=20, seed=3)
        return tuner.run(initial=dict(PAPER_CONFIG))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    paper = objective(PAPER_CONFIG)
    print(f"\n[{tuner_cls.__name__}] best {result.best_score:,.0f} slices/s "
          f"in {result.evaluations} evaluations "
          f"(paper config: {paper:,.0f}; "
          f"ratio {result.best_score / paper:.3f})")
    assert result.best_score >= paper * 0.999  # seeded with the paper config


def test_paper_config_is_near_optimal(benchmark):
    """Sanity: the paper's hand-tuned values sit close to what a longer
    search finds — the model agrees the deployed config was good."""
    def run():
        tuner = EvolutionTuner(HEPNOS_SPACE, objective, budget=40, seed=0)
        return tuner.run(initial=dict(PAPER_CONFIG))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    paper = objective(PAPER_CONFIG)
    print(f"\ntuned best: {result.best_score:,.0f}; paper config: "
          f"{paper:,.0f}; headroom {result.best_score / paper - 1:.1%}")
    print(f"tuned config: {result.best_config}")
    assert result.best_score < paper * 1.5  # no silly 10x left on the table
