"""A-weak ablation: weak scaling of the HEPnOS workflows.

The paper claims both weak and strong scalability (sections I and IV).
Here the per-node dataset share is fixed while the allocation grows;
throughput per node should stay roughly constant for the in-memory
backend.
"""

from collections import defaultdict

from repro.perf import format_records, run_weak_scaling
from repro.perf.workload import LARGE


def run_weak():
    return run_weak_scaling(
        node_counts=(16, 32, 64, 128),
        events_per_node=LARGE.total_events // 128,
        systems=("hepnos-mem", "hepnos-lsm"),
    )


def test_weak_scaling(benchmark):
    records = benchmark.pedantic(run_weak, rounds=1, iterations=1)
    print("\n== A-weak: weak scaling (fixed events per node) ==")
    print(format_records(records))
    per_node = defaultdict(dict)
    for r in records:
        per_node[r.system][r.nodes] = r.throughput / r.nodes
    print("\nper-node throughput (slices/s/node):")
    for system, values in sorted(per_node.items()):
        row = "  ".join(f"{n}:{v:,.0f}" for n, v in sorted(values.items()))
        print(f"  {system:<12} {row}")
    mem = per_node["hepnos-mem"]
    assert mem[128] > 0.75 * mem[16], "weak scaling efficiency below 75%"
