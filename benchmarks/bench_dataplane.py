#!/usr/bin/env python
"""Data-plane fast-path benchmark and CI perf gate.

Compares the optimized data plane (compiled serializers, packed prefix
loads, client-side product cache) against the fallback path that
predates it (interpreted archive, per-key ``get_multi``, cache off).
Four measurements:

1. **Serialization micro**: encode+decode of a NOvA slice corpus with
   the compiled fast path vs the interpreted archive.
2. **PEP batch load**: a :class:`ParallelEventProcessor` pass over a
   slice dataset with a no-op user callback -- pure data plane
   (event listing, batch product loads, decode) -- fast configuration
   vs fallback configuration.
3. **Workflow identity** (untimed): full NOvA candidate selection
   (:class:`HEPnOSWorkflow`) under both configurations must accept the
   same candidates and serialize them to byte-identical output --
   fault-free AND under the seeded chaos schedule from the
   fault-injection subsystem.
4. **Product-cache disabled overhead**: repeated single-product load
   passes with the cache enabled (cleared per pass, so every probe
   misses) vs disabled; disabling the cache must cost <2% beyond
   measured run-to-run noise.

Exit status is nonzero if any gate fails, so CI can run it directly::

    PYTHONPATH=src python benchmarks/bench_dataplane.py --quick
    PYTHONPATH=src python benchmarks/bench_dataplane.py --json out.json

``--quick`` shrinks the corpus and gates speedups at 1.5x; the full
run gates at the 2x acceptance bound.  Printed numbers are the real
measurement either way (min over rounds).
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import tempfile
import time
from typing import Optional, Sequence

from repro.bedrock import BedrockServer, default_hepnos_config
from repro.faults.chaos import build_schedule, chaos_client_policy
from repro.hepnos import (
    DataStore,
    ParallelEventProcessor,
    PEPOptions,
    ProductCacheOptions,
    WriteBatch,
    vector_of,
)
from repro.mercury import Fabric
from repro.mercury.fabric import FaultModel
from repro.nova.datamodel import EventHeader, SliceData
from repro.nova.files import generate_file_set
from repro.nova.generator import BEAM, COSMIC, GeneratorConfig, NovaGenerator
from repro.serial import dumps, fast_path, loads
from repro.workflows.hepnos import HEPnOSWorkflow

QUICK = dict(serial_events=8, serial_rounds=3, pep_events=96, pep_rounds=2,
             cache_events=120, cache_rounds=6, wf_files=2, wf_events=24,
             speedup_gate=1.5)
FULL = dict(serial_events=48, serial_rounds=5, pep_events=256, pep_rounds=3,
            cache_events=300, cache_rounds=8, wf_files=3, wf_events=32,
            speedup_gate=2.0)
CACHE_OVERHEAD_GATE = 0.02


def _deploy(fabric: Fabric) -> list:
    servers = [
        BedrockServer(fabric, default_hepnos_config(
            f"sm://node{i}/hepnos", num_providers=2, event_databases=2,
            product_databases=2, run_databases=1, subrun_databases=1,
        ))
        for i in range(2)
    ]
    fabric.runtime.start()
    return servers


def _slice_corpus(num_events: int) -> list:
    generator = NovaGenerator(BEAM)
    slices = []
    for e in range(num_events):
        slices.extend(generator.slices_for_event(1000, 0, e))
    return slices


def _fill_dataset(datastore: DataStore, path: str, num_events: int):
    """One subrun of ``num_events`` events, each holding a slice vector
    and a header (the ``rec.slc`` + ``rec.hdr`` pair a selection reads).

    Uses the cosmic stream (12x the beam slice rate) so product bytes,
    not container machinery, dominate the pass.
    """
    generator = NovaGenerator(COSMIC)
    ds = datastore.create_dataset(path)
    with WriteBatch(datastore) as batch:
        run = ds.create_run(1, batch=batch)
        subrun = run.create_subrun(0, batch=batch)
        for e in range(num_events):
            event = subrun.create_event(e, batch=batch)
            event.store(generator.slices_for_event(1, 0, e), label="s",
                        batch=batch)
            event.store(generator.header_for_event(1, 0, e), label="h",
                        batch=batch)
    return ds


# -- 1. serialization micro --------------------------------------------------


def bench_serialization(params: dict) -> dict:
    slices = _slice_corpus(params["serial_events"])
    blob_len = len(dumps(slices))

    def roundtrip() -> None:
        out = loads(dumps(slices))
        assert len(out) == len(slices)

    def timed(enabled: bool) -> float:
        best = float("inf")
        with fast_path(enabled):
            roundtrip()  # warm-up (and compile, on the fast side)
            for _ in range(params["serial_rounds"]):
                t0 = time.perf_counter()
                roundtrip()
                best = min(best, time.perf_counter() - t0)
        return best

    slow = timed(False)
    fast = timed(True)
    speedup = slow / fast
    print(f"[serialization] {len(slices)} slices, {blob_len} bytes/pass: "
          f"interpreted {slow * 1e3:.1f}ms, compiled {fast * 1e3:.1f}ms "
          f"({speedup:.2f}x)")
    return {
        "ops_per_s": len(slices) / fast,
        "bytes_per_s": 2 * blob_len / fast,  # encoded + decoded
        "fast_s": fast,
        "fallback_s": slow,
        "speedup": speedup,
        "objects": len(slices),
        "bytes_per_pass": blob_len,
    }


# -- 2. PEP batch load -------------------------------------------------------


def _pep_pass(datastore: DataStore, dataset, packed: bool) -> int:
    pep = ParallelEventProcessor(
        datastore,
        options=PEPOptions(input_batch_size=64, dispatch_batch_size=8,
                           packed_loads=packed),
        products=[(vector_of(SliceData), "s"), (EventHeader, "h")],
    )
    count = {"n": 0}
    pep.process(dataset, lambda ev: count.__setitem__("n", count["n"] + 1))
    return count["n"]


def bench_pep_batch_load(params: dict) -> dict:
    num_events = params["pep_events"]

    def timed(enabled: bool) -> tuple:
        fabric = Fabric(threaded=True)
        servers = _deploy(fabric)
        try:
            datastore = DataStore.connect(
                fabric, servers,
                product_cache=ProductCacheOptions(enabled=enabled),
            )
            with fast_path(enabled):
                dataset = _fill_dataset(datastore, "bench/pep", num_events)
                assert _pep_pass(datastore, dataset, packed=enabled) \
                    == num_events  # warm-up
                best, best_bytes = float("inf"), 0
                for _ in range(params["pep_rounds"]):
                    stats = fabric.stats
                    bytes0 = (stats.rpc_bytes + stats.response_bytes
                              + stats.bulk_bytes)
                    t0 = time.perf_counter()
                    processed = _pep_pass(datastore, dataset, packed=enabled)
                    elapsed = time.perf_counter() - t0
                    assert processed == num_events
                    moved = (stats.rpc_bytes + stats.response_bytes
                             + stats.bulk_bytes) - bytes0
                    if elapsed < best:
                        best, best_bytes = elapsed, moved
            return best, best_bytes
        finally:
            fabric.runtime.shutdown()

    slow, _ = timed(False)
    fast, fast_bytes = timed(True)
    speedup = slow / fast
    print(f"[pep-batch-load] {num_events} events: per-key/interpreted "
          f"{slow * 1e3:.1f}ms, packed/compiled {fast * 1e3:.1f}ms "
          f"({speedup:.2f}x, {fast_bytes / fast / 1e6:.1f} MB/s on the "
          f"wire)")
    return {
        "ops_per_s": num_events / fast,
        "bytes_per_s": fast_bytes / fast,
        "fast_s": fast,
        "fallback_s": slow,
        "speedup": speedup,
        "events": num_events,
    }


# -- 3. workflow identity (fault-free + chaos) -------------------------------


def _run_workflow(sample_paths: Sequence[str], enabled: bool,
                  chaos_seed: Optional[int] = None) -> bytes:
    """Ingest + select under one configuration; return the accepted-id
    blob serialized by that configuration's own archive path."""
    fabric = Fabric(threaded=True)
    servers = _deploy(fabric)
    try:
        policy = chaos_client_policy() if chaos_seed is not None else None
        datastore = DataStore.connect(
            fabric, servers, retry_policy=policy,
            product_cache=ProductCacheOptions(enabled=enabled),
        )
        workflow = HEPnOSWorkflow(
            datastore, "nova/dataplane",
            pep_options=PEPOptions(input_batch_size=64,
                                   dispatch_batch_size=8,
                                   packed_loads=enabled),
        )
        with fast_path(enabled):
            workflow.ingest(sample_paths, num_ranks=1)
            if chaos_seed is not None:
                fabric.fault_model = build_schedule(
                    chaos_seed, servers, drop=0.02, delay=0.0005,
                    corrupt=0.01, crash_window=(10, 30),
                    spike_window=(40, 44))
            try:
                result = workflow.select(num_ranks=2)
            finally:
                fabric.fault_model = FaultModel()
            return dumps(sorted(result.accepted_ids))
    finally:
        fabric.runtime.shutdown()


def check_workflow_identity(params: dict, seed: int, workdir: str) -> dict:
    sample = generate_file_set(
        f"{workdir}/files", num_files=params["wf_files"],
        mean_events_per_file=params["wf_events"],
        config=GeneratorConfig(signal_fraction=0.05, events_per_subrun=16,
                               subruns_per_run=4),
    )
    blobs = {
        "fast": _run_workflow(sample.paths, enabled=True),
        "fallback": _run_workflow(sample.paths, enabled=False),
        "fast+chaos": _run_workflow(sample.paths, enabled=True,
                                    chaos_seed=seed),
        "fallback+chaos": _run_workflow(sample.paths, enabled=False,
                                        chaos_seed=seed),
    }
    accepted = loads(blobs["fast"])
    identical = len(set(blobs.values())) == 1
    print(f"[workflow-identity] {len(accepted)} candidates accepted; "
          f"outputs byte-identical across "
          f"{{fast, fallback}} x {{fault-free, chaos seed {seed}}}: "
          f"{identical}")
    return {
        "identical": identical,
        "accepted": len(accepted),
        "configurations": sorted(blobs),
        "chaos_seed": seed,
    }


# -- 4. product-cache disabled overhead --------------------------------------


def bench_cache_overhead(params: dict) -> dict:
    num_events = params["cache_events"]
    fabric = Fabric(threaded=True)
    servers = _deploy(fabric)
    try:
        enabled_store = DataStore.connect(fabric, servers)
        disabled_store = DataStore.connect(
            fabric, servers, product_cache=ProductCacheOptions(enabled=False))
        _fill_dataset(enabled_store, "bench/cache", num_events)

        def events_of(datastore: DataStore) -> list:
            return list(datastore["bench/cache"][1][0])

        spec = vector_of(SliceData)

        def one_pass(datastore: DataStore, events: list) -> float:
            cache = datastore._product_cache
            if cache is not None:
                cache.clear()  # every probe misses: pure probe cost
            gc.collect()  # keep collector pauses out of the timed region
            gc.disable()
            try:
                t0 = time.perf_counter()
                for event in events:
                    event.load(spec, label="s")
                return time.perf_counter() - t0
            finally:
                gc.enable()

        # Interleave the configurations round-by-round so drift (GC,
        # allocator state, machine load) hits both sides equally; take
        # the min of each series.  Two enabled series bracket the
        # disabled one and calibrate the noise floor.
        enabled_events = events_of(enabled_store)
        disabled_events = events_of(disabled_store)
        series = {"a": [], "d": [], "b": []}
        one_pass(enabled_store, enabled_events)    # warm-up
        one_pass(disabled_store, disabled_events)  # warm-up
        for _ in range(params["cache_rounds"]):
            series["a"].append(one_pass(enabled_store, enabled_events))
            series["d"].append(one_pass(disabled_store, disabled_events))
            series["b"].append(one_pass(enabled_store, enabled_events))
    finally:
        fabric.runtime.shutdown()
    enabled = min(min(series["a"]), min(series["b"]))
    disabled = min(series["d"])
    noise = abs(min(series["a"]) - min(series["b"])) / enabled
    overhead = disabled / enabled - 1
    print(f"[cache-overhead] {num_events} loads/pass: enabled(miss) "
          f"{enabled * 1e3:.1f}ms, disabled {disabled * 1e3:.1f}ms "
          f"({overhead * +100:.2f}% overhead, noise {noise * 100:.2f}%)")
    return {
        "ops_per_s": num_events / disabled,
        "bytes_per_s": 0.0,  # dominated by RPC count, not payload size
        "enabled_s": enabled,
        "disabled_s": disabled,
        "overhead": overhead,
        "noise": noise,
    }


# -- driver ------------------------------------------------------------------


def run_benches(quick: bool, seed: int, workdir: Optional[str] = None) -> dict:
    params = QUICK if quick else FULL
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="hepnos-dataplane-")
    return {
        "quick": quick,
        "speedup_gate": params["speedup_gate"],
        "cache_overhead_gate": CACHE_OVERHEAD_GATE,
        "benches": {
            "serialization_roundtrip": bench_serialization(params),
            "pep_batch_load": bench_pep_batch_load(params),
            "workflow_identity": check_workflow_identity(params, seed,
                                                         workdir),
            "product_cache_overhead": bench_cache_overhead(params),
        },
    }


def evaluate_gates(results: dict) -> list:
    """Return a list of human-readable gate failures (empty == pass)."""
    gate = results["speedup_gate"]
    benches = results["benches"]
    failures = []
    for name in ("serialization_roundtrip", "pep_batch_load"):
        speedup = benches[name]["speedup"]
        if speedup < gate:
            failures.append(f"{name}: fast path {speedup:.2f}x fallback, "
                            f"gate is {gate:.1f}x")
    if not benches["workflow_identity"]["identical"]:
        failures.append("workflow_identity: candidate-selection outputs "
                        "differ across configurations")
    cache = benches["product_cache_overhead"]
    allowed = results["cache_overhead_gate"] + cache["noise"]
    if cache["overhead"] > allowed:
        failures.append(f"product_cache_overhead: disabled cache costs "
                        f"{cache['overhead'] * 100:.2f}%, gate is "
                        f"{allowed * 100:.2f}% (2% + measured noise)")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the data-plane fast paths against the "
                    "interpreted/per-key fallback and gate the speedups.")
    parser.add_argument("--quick", action="store_true",
                        help="small corpus, 1.5x gate (CI perf smoke)")
    parser.add_argument("--seed", type=int, default=7,
                        help="chaos-schedule seed for the identity check "
                             "(default: 7)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the results as JSON")
    args = parser.parse_args(argv)

    results = run_benches(quick=args.quick, seed=args.seed)
    failures = evaluate_gates(results)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"results written to {args.json}")
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    if not failures:
        print("all data-plane gates passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
