"""Figure 3: throughput vs dataset size at 128 nodes (paper section IV-E).

Regenerates: throughput for the {1929, 3858, 7716}-file samples
({4.36M, 8.72M, 17.44M} events) on a fixed 128-node allocation.

Shape claims asserted:

1. the file-based workflow is especially poor on the smaller datasets
   (with 1929 files only ~24% of the 8192 cores can be busy);
2. the effect is greatly lessened for HEPnOS;
3. HEPnOS wins at every dataset size.
"""

from conftest import bench_repeats

from repro.perf import (
    check_figure3_shape,
    format_records,
    run_dataset_sweep,
)
from repro.perf.filebased import FileBasedModel
from repro.perf.workload import SMALL


def run_figure3():
    records = run_dataset_sweep(nodes=128, repeats=bench_repeats())
    checks = check_figure3_shape(records)
    starvation = FileBasedModel().simulate(128, SMALL)
    return records, checks, starvation


def test_fig3_dataset_size(benchmark):
    records, checks, starvation = benchmark.pedantic(
        run_figure3, rounds=1, iterations=1
    )
    print("\n== Figure 3: throughput vs dataset size at 128 nodes ==")
    print(format_records(records, group_by_dataset=True))
    print(f"\nfile-based core utilization on the 1929-file sample: "
          f"{starvation.core_utilization:.0%} (paper: ~24%)")
    print("\nshape checks:")
    for name, value in checks.items():
        print(f"  {name}: {value}")
    failed = [k for k, v in checks.items()
              if not isinstance(v, float) and not bool(v)]
    assert not failed, f"figure 3 shape checks failed: {failed}"
    # The paper's 24%-of-cores-busy observation for the small sample.
    assert 0.1 < starvation.core_utilization < 0.35
