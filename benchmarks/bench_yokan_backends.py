"""A-backend ablation: Yokan storage backends head-to-head.

Measures put / get / ordered-scan rates of the in-memory map, the LSM
tree (RocksDB stand-in), and the copy-on-write B+tree (BerkeleyDB
stand-in) -- the backend choice behind Figure 2's mem-vs-RocksDB pair.
"""

import pytest

from repro.yokan import BTreeBackend, LSMBackend, MemoryBackend

N_ITEMS = 2000


def make_backend(kind: str, tmp_path):
    if kind == "map":
        return MemoryBackend()
    if kind == "lsm":
        return LSMBackend(str(tmp_path / "lsm"), memtable_bytes=1 << 20)
    return BTreeBackend(str(tmp_path / "bt"), order=64, commit_every=64)


def fill(backend, n=N_ITEMS):
    for i in range(n):
        backend.put(f"key-{i:08d}".encode(), b"v" * 100)
    return backend


@pytest.mark.parametrize("kind", ["map", "lsm", "btree"])
def test_put_rate(benchmark, kind, tmp_path):
    backend = make_backend(kind, tmp_path)
    counter = {"i": 0}

    def put_one():
        i = counter["i"]
        counter["i"] += 1
        backend.put(f"key-{i:012d}".encode(), b"v" * 100)

    benchmark(put_one)
    backend.close()


@pytest.mark.parametrize("kind", ["map", "lsm", "btree"])
def test_get_rate(benchmark, kind, tmp_path):
    backend = fill(make_backend(kind, tmp_path))
    if kind == "lsm":
        backend.flush_memtable()  # measure the SSTable read path
    counter = {"i": 0}

    def get_one():
        i = counter["i"] % N_ITEMS
        counter["i"] += 1
        return backend.get(f"key-{i:08d}".encode())

    benchmark(get_one)
    backend.close()


@pytest.mark.parametrize("kind", ["map", "lsm", "btree"])
def test_ordered_scan(benchmark, kind, tmp_path):
    backend = fill(make_backend(kind, tmp_path))

    def scan_all():
        return sum(1 for _ in backend.scan())

    count = benchmark(scan_all)
    assert count == N_ITEMS
    backend.close()


@pytest.mark.parametrize("kind", ["map", "lsm", "btree"])
def test_prefix_listing(benchmark, kind, tmp_path):
    """The container-iteration primitive HEPnOS uses."""
    backend = make_backend(kind, tmp_path)
    for subrun in range(10):
        for event in range(200):
            backend.put(f"sr{subrun:02d}/ev{event:06d}".encode(), b"")

    def list_one_subrun():
        return backend.list_keys(prefix=b"sr05/")

    keys = benchmark(list_one_subrun)
    assert len(keys) == 200
    backend.close()


class TestCompactionAblation:
    """LSM compaction-trigger sweep: fewer tables -> faster reads,
    more rewrite (write amplification) -- the RocksDB trade-off behind
    the paper's backend choice."""

    @pytest.mark.parametrize("trigger", [2, 8, 32])
    def test_compaction_trigger(self, benchmark, tmp_path, trigger):
        db = LSMBackend(str(tmp_path / f"lsm{trigger}"),
                        memtable_bytes=4096, compaction_trigger=trigger)
        for i in range(3000):
            db.put(f"key-{i % 500:06d}-{i}".encode(), b"v" * 64)
        counter = {"i": 0}

        def read_one():
            i = counter["i"] % 3000
            counter["i"] += 1
            return db.get(f"key-{i % 500:06d}-{i}".encode())

        benchmark(read_one)
        print(f"\n[trigger={trigger}] sstables={len(db._sstables)} "
              f"write_amp={db.stats.write_amplification:.1f} "
              f"compactions={db.stats.compactions}")
        db.close()

    def test_write_amp_vs_read_path(self, benchmark, tmp_path):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        results = {}
        for trigger in (2, 32):
            db = LSMBackend(str(tmp_path / f"wa{trigger}"),
                            memtable_bytes=4096,
                            compaction_trigger=trigger)
            for i in range(2000):
                db.put(f"{i:08d}".encode(), b"v" * 64)
            results[trigger] = (db.stats.write_amplification,
                                len(db._sstables))
            db.close()
        amp_eager, tables_eager = results[2]
        amp_lazy, tables_lazy = results[32]
        print(f"\neager (trigger=2): write_amp={amp_eager:.1f}, "
              f"tables={tables_eager}; lazy (trigger=32): "
              f"write_amp={amp_lazy:.1f}, tables={tables_lazy}")
        assert amp_eager > amp_lazy      # eager compaction rewrites more
        assert tables_eager < tables_lazy  # ...but keeps fewer tables
