#!/usr/bin/env python
"""A-backend ablation: Yokan storage backends head-to-head.

Two layers:

1. **pytest-benchmark micro-tests** (run under pytest): put / get /
   ordered-scan / prefix-listing rates of the in-memory map, the LSM
   tree (RocksDB stand-in), and the copy-on-write B+tree (BerkeleyDB
   stand-in) -- the backend choice behind Figure 2's mem-vs-RocksDB
   pair -- plus a compaction-trigger ablation.

2. **The gated write/read-amplification suite** (``run_benches`` /
   ``evaluate_gates``, wired into ``run_all.py``): a fill ->
   point-read -> scan pipeline per backend, reporting sustained-write
   throughput, point-read p50/p99, write-amp and read-amp factors, and
   block-cache hit rates.  Two gates:

   - the production LSM engine (background immutable-memtable pipeline
     + size-tiered compaction) must ingest at >= 1.5x the seed engine
     (inline flush, merge-everything compaction) under the sustained
     write phase;
   - warm-block-cache point-read p99 must beat the same table layout
     read with the cache disabled.

Run directly or through ``run_all.py``::

    PYTHONPATH=src python benchmarks/bench_yokan_backends.py --quick
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import time
from typing import Optional, Sequence

import pytest

from repro.yokan import BTreeBackend, LSMBackend, MemoryBackend

N_ITEMS = 2000

#: production engine vs seed engine ingest ratio (sustained writes)
INGEST_GATE = 1.5

QUICK = {
    "n_items": 12_000,
    "value_bytes": 256,
    "reads": 2_000,
    "warm_rounds": 3,
}
FULL = {
    "n_items": 20_000,
    "value_bytes": 256,
    "reads": 8_000,
    "warm_rounds": 3,
}

#: the production engine under test (background pipeline, tiered
#: compaction, block cache) -- small memtable so the fill phase
#: exercises many rotations
LSM_TUNING = dict(memtable_bytes=64 * 1024, compaction_trigger=4,
                  max_immutables=8, block_cache_bytes=8 * 1024 * 1024,
                  bits_per_key=10)
#: the seed engine, reconstructed from config: inline flushes on the
#: writing thread, merge-everything compaction, no block cache
SEED_TUNING = dict(memtable_bytes=64 * 1024, compaction_trigger=4,
                   background=False, compaction="full",
                   block_cache_bytes=0, bits_per_key=10)


def make_backend(kind: str, tmp_path):
    if kind == "map":
        return MemoryBackend()
    if kind == "lsm":
        return LSMBackend(str(tmp_path / "lsm"), memtable_bytes=1 << 20)
    return BTreeBackend(str(tmp_path / "bt"), order=64, commit_every=64)


def fill(backend, n=N_ITEMS):
    for i in range(n):
        backend.put(f"key-{i:08d}".encode(), b"v" * 100)
    return backend


@pytest.mark.parametrize("kind", ["map", "lsm", "btree"])
def test_put_rate(benchmark, kind, tmp_path):
    backend = make_backend(kind, tmp_path)
    counter = {"i": 0}

    def put_one():
        i = counter["i"]
        counter["i"] += 1
        backend.put(f"key-{i:012d}".encode(), b"v" * 100)

    benchmark(put_one)
    backend.close()


@pytest.mark.parametrize("kind", ["map", "lsm", "btree"])
def test_get_rate(benchmark, kind, tmp_path):
    backend = fill(make_backend(kind, tmp_path))
    if kind == "lsm":
        backend.flush_memtable()  # measure the SSTable read path
    counter = {"i": 0}

    def get_one():
        i = counter["i"] % N_ITEMS
        counter["i"] += 1
        return backend.get(f"key-{i:08d}".encode())

    benchmark(get_one)
    backend.close()


@pytest.mark.parametrize("kind", ["map", "lsm", "btree"])
def test_ordered_scan(benchmark, kind, tmp_path):
    backend = fill(make_backend(kind, tmp_path))

    def scan_all():
        return sum(1 for _ in backend.scan())

    count = benchmark(scan_all)
    assert count == N_ITEMS
    backend.close()


@pytest.mark.parametrize("kind", ["map", "lsm", "btree"])
def test_prefix_listing(benchmark, kind, tmp_path):
    """The container-iteration primitive HEPnOS uses."""
    backend = make_backend(kind, tmp_path)
    for subrun in range(10):
        for event in range(200):
            backend.put(f"sr{subrun:02d}/ev{event:06d}".encode(), b"")

    def list_one_subrun():
        return backend.list_keys(prefix=b"sr05/")

    keys = benchmark(list_one_subrun)
    assert len(keys) == 200
    backend.close()


class TestCompactionAblation:
    """LSM compaction-trigger sweep: fewer tables -> faster reads,
    more rewrite (write amplification) -- the RocksDB trade-off behind
    the paper's backend choice.  Inline mode pins the flush/compaction
    schedule, so the counters are deterministic."""

    @pytest.mark.parametrize("trigger", [2, 8, 32])
    def test_compaction_trigger(self, benchmark, tmp_path, trigger):
        db = LSMBackend(str(tmp_path / f"lsm{trigger}"),
                        memtable_bytes=4096, compaction_trigger=trigger,
                        background=False, compaction="full")
        for i in range(3000):
            db.put(f"key-{i % 500:06d}-{i}".encode(), b"v" * 64)
        counter = {"i": 0}

        def read_one():
            i = counter["i"] % 3000
            counter["i"] += 1
            return db.get(f"key-{i % 500:06d}-{i}".encode())

        benchmark(read_one)
        print(f"\n[trigger={trigger}] sstables={len(db._sstables)} "
              f"write_amp={db.stats.write_amplification:.1f} "
              f"compactions={db.stats.compactions}")
        db.close()

    def test_write_amp_vs_read_path(self, benchmark, tmp_path):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        results = {}
        for trigger in (2, 32):
            db = LSMBackend(str(tmp_path / f"wa{trigger}"),
                            memtable_bytes=4096,
                            compaction_trigger=trigger,
                            background=False, compaction="full")
            for i in range(2000):
                db.put(f"{i:08d}".encode(), b"v" * 64)
            results[trigger] = (db.stats.write_amplification,
                                len(db._sstables))
            db.close()
        amp_eager, tables_eager = results[2]
        amp_lazy, tables_lazy = results[32]
        print(f"\neager (trigger=2): write_amp={amp_eager:.1f}, "
              f"tables={tables_eager}; lazy (trigger=32): "
              f"write_amp={amp_lazy:.1f}, tables={tables_lazy}")
        assert amp_eager > amp_lazy      # eager compaction rewrites more
        assert tables_eager < tables_lazy  # ...but keeps fewer tables


# -- the gated write/read-amplification suite --------------------------------


def _percentile(samples: list, q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _open_backend(kind: str, workdir: str, name: str):
    if kind == "map":
        return MemoryBackend()
    if kind == "btree":
        return BTreeBackend(f"{workdir}/{name}", order=64, commit_every=64)
    if kind == "lsm":
        return LSMBackend(f"{workdir}/{name}", **LSM_TUNING)
    if kind == "lsm_seed":
        return LSMBackend(f"{workdir}/{name}", **SEED_TUNING)
    raise ValueError(kind)


def _quiesce(backend) -> float:
    """Flush + drain an LSM backend; returns the time spent waiting."""
    t0 = time.perf_counter()
    if hasattr(backend, "flush_memtable"):
        backend.flush_memtable()
        backend.drain()
    return time.perf_counter() - t0


def _fill_phase(backend, keys: list, value: bytes) -> dict:
    """Sustained single-put writes; throughput counts acknowledged
    puts (the background engine keeps flushing after the last ack --
    that drain is reported separately, not hidden)."""
    t0 = time.perf_counter()
    for key in keys:
        backend.put(key, value)
    wall = time.perf_counter() - t0
    drain_s = _quiesce(backend)
    nbytes = sum(len(k) for k in keys) + len(value) * len(keys)
    out = {
        "ops_per_s": len(keys) / wall,
        "bytes_per_s": nbytes / wall,
        "wall_s": round(wall, 4),
        "drain_s": round(drain_s, 4),
        "items": len(keys),
    }
    stats = getattr(backend, "stats", None)
    if stats is not None and hasattr(stats, "write_amplification"):
        out["write_amplification"] = round(stats.write_amplification, 3)
        out["flushes"] = stats.flushes
        out["compactions"] = stats.compactions
        out["throttle_waits"] = stats.throttle_waits
        out["backpressure_waits"] = stats.backpressure_waits
    return out


def _read_phase(backend, sample: list, value_bytes: int,
                warm_rounds: int) -> dict:
    """Point reads: one cold pass (populates any cache), then
    ``warm_rounds`` measured passes; percentiles come from the best
    warm pass."""

    def one_pass() -> list:
        latencies = []
        for key in sample:
            t0 = time.perf_counter()
            backend.get(key)
            latencies.append(time.perf_counter() - t0)
        return latencies

    cold = one_pass()
    best_wall = float("inf")
    best: list = cold
    for _ in range(warm_rounds):
        latencies = one_pass()
        wall = sum(latencies)
        if wall < best_wall:
            best_wall, best = wall, latencies
    wall = sum(best)
    out = {
        "ops_per_s": len(sample) / wall,
        "bytes_per_s": len(sample) * value_bytes / wall,
        "p50_us": round(_percentile(best, 0.50) * 1e6, 3),
        "p99_us": round(_percentile(best, 0.99) * 1e6, 3),
        "p99_cold_us": round(_percentile(cold, 0.99) * 1e6, 3),
        "reads": len(sample),
    }
    stats = getattr(backend, "stats", None)
    if stats is not None and hasattr(stats, "read_amplification"):
        out["read_amplification"] = round(stats.read_amplification, 3)
        out["block_cache_hit_rate"] = round(stats.block_cache_hit_rate, 4)
        out["bloom_skips"] = stats.bloom_skips
        out["sstable_reads"] = stats.sstable_reads
    return out


def _scan_phase(backend, n_items: int, value_bytes: int) -> dict:
    t0 = time.perf_counter()
    count = sum(1 for _ in backend.scan())
    wall = time.perf_counter() - t0
    assert count == n_items, f"scan saw {count} of {n_items} keys"
    return {
        "ops_per_s": count / wall,
        "bytes_per_s": count * value_bytes / wall,
        "entries": count,
    }


def run_benches(quick: bool, seed: int = 7,
                workdir: Optional[str] = None) -> dict:
    params = QUICK if quick else FULL
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="hepnos-backends-")
    rng = random.Random(seed)
    n = params["n_items"]
    value = bytes(range(256)) * (params["value_bytes"] // 256 + 1)
    value = value[:params["value_bytes"]]
    keys = [f"key-{i:08d}".encode() for i in range(n)]
    sample = [keys[rng.randrange(n)] for _ in range(params["reads"])]

    benches: dict = {}
    backends: dict = {}
    for kind in ("map", "btree", "lsm", "lsm_seed"):
        backend = _open_backend(kind, workdir, kind)
        fill_result = _fill_phase(backend, keys, value)
        print(f"[fill:{kind}] {fill_result['ops_per_s']:,.0f} puts/s"
              + (f", write_amp={fill_result['write_amplification']}"
                 if "write_amplification" in fill_result else ""))
        benches[f"backend_fill_{kind}"] = fill_result
        backends[kind] = backend

    for kind, backend in backends.items():
        read_result = _read_phase(backend, sample, params["value_bytes"],
                                  params["warm_rounds"])
        print(f"[read:{kind}] p50={read_result['p50_us']}us "
              f"p99={read_result['p99_us']}us"
              + (f", cache_hit={read_result['block_cache_hit_rate']:.1%}"
                 if "block_cache_hit_rate" in read_result else ""))
        benches[f"backend_point_read_{kind}"] = read_result
        scan_result = _scan_phase(backend, n, params["value_bytes"])
        print(f"[scan:{kind}] {scan_result['ops_per_s']:,.0f} entries/s")
        benches[f"backend_scan_{kind}"] = scan_result

    # The warm-cache comparison: the exact same table layout, reopened
    # with the block cache disabled -- every point read decodes its
    # block from the mmap.
    backends["lsm"].close()
    nocache = LSMBackend(f"{workdir}/lsm",
                         **{**LSM_TUNING, "block_cache_bytes": 0,
                            "background": False})
    nocache_result = _read_phase(nocache, sample, params["value_bytes"],
                                 params["warm_rounds"])
    print(f"[read:lsm-nocache] p50={nocache_result['p50_us']}us "
          f"p99={nocache_result['p99_us']}us")
    benches["backend_point_read_lsm_nocache"] = nocache_result
    nocache.close()
    for kind, backend in backends.items():
        if kind != "lsm":
            backend.close()

    warm = benches["backend_point_read_lsm"]
    ratio = (benches["backend_fill_lsm"]["ops_per_s"]
             / benches["backend_fill_lsm_seed"]["ops_per_s"])
    print(f"[ingest-gate] background/tiered vs inline/full: {ratio:.2f}x "
          f"(need >= {INGEST_GATE}x)")
    print(f"[read-gate] warm p99 {warm['p99_us']}us vs nocache "
          f"{nocache_result['p99_us']}us")
    return {
        "quick": quick,
        "seed": seed,
        "ingest_gate": INGEST_GATE,
        "benches": benches,
        "ingest_ratio": round(ratio, 3),
        "warm_p99_us": warm["p99_us"],
        "nocache_p99_us": nocache_result["p99_us"],
    }


def evaluate_gates(results: dict) -> list:
    """Return human-readable gate failures (empty == pass)."""
    failures = []
    if results["ingest_ratio"] < results["ingest_gate"]:
        failures.append(
            f"backend_ingest: background LSM ingest is only "
            f"{results['ingest_ratio']:.2f}x the inline seed engine, "
            f"gate is {results['ingest_gate']}x")
    if results["warm_p99_us"] >= results["nocache_p99_us"]:
        failures.append(
            f"backend_point_read: warm-cache p99 "
            f"({results['warm_p99_us']}us) is not better than the "
            f"cache-disabled p99 ({results['nocache_p99_us']}us)")
    warm = results["benches"]["backend_point_read_lsm"]
    if warm.get("block_cache_hit_rate", 0) <= 0.5:
        failures.append(
            f"backend_point_read: block cache hit rate "
            f"{warm.get('block_cache_hit_rate', 0):.1%} leaves the warm "
            "p99 measuring the uncached path")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the Yokan backends: sustained-write "
                    "throughput, point-read p99s, write/read "
                    "amplification, and the LSM engine gates.")
    parser.add_argument("--quick", action="store_true",
                        help="small corpus (CI smoke)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the results as JSON")
    args = parser.parse_args(argv)
    results = run_benches(quick=args.quick, seed=args.seed)
    failures = evaluate_gates(results)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
