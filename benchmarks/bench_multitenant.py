#!/usr/bin/env python
"""Multi-tenant isolation and broker-overhead benchmarks.

Two gated measurements of the request broker (``repro.broker``):

1. **Isolation** -- one abusive tenant (unbounded demand, bulk
   payloads, a retry loop that ignores politeness) shares a brokered
   server with a population of well-behaved tenants whose per-tenant
   demand is heavy-tailed (Pareto).  The control is the *same*
   population on the *same* deployment without the abuser, so the
   ratio isolates exactly what the abuser adds.  The gate: adding the
   abuser may not push the well-behaved p99 store latency beyond
   ``ISOLATION_GATE`` (3x) the no-abuser baseline, and *zero*
   well-behaved operations may starve (every op completes without a
   retry giveup).  The run is vacuous unless the broker actually
   metered the abuser, so ``abuser_shed > 0`` is part of the gate.

2. **Broker-idle overhead** -- the repo's canonical hot path (batched
   ``WriteBatch`` ingest + a ParallelEventProcessor read-back pass,
   the same workload ``bench_fault_overhead`` gates) through an
   unbrokered server vs a brokered server whose quotas never bind
   (open registry, unlimited rate).  The admission + fair-share
   machinery then sits on every RPC doing nothing useful; the gate
   allows ``IDLE_OVERHEAD_GATE`` (5%) plus the measured run-to-run
   noise of the unbrokered path.

Quick mode drives a dozen well-behaved tenants; full mode drives
hundreds (the "hundreds of simulated concurrent tenants" target),
through a bounded worker pool so the process stays within the
cooperative-concurrency model of the threaded fabric.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from typing import List, Optional, Sequence

from repro.bedrock import BedrockServer, default_hepnos_config
from repro.errors import ServiceBusy
from repro.faults.retry import RetryPolicy
from repro.hepnos import (DataStore, ParallelEventProcessor, PEPOptions,
                          WriteBatch, vector_of)
import repro.hepnos as hepnos
from repro.mercury import Fabric
from repro.tools.common import common_parser

ISOLATION_GATE = 3.0       # contended p99 <= 3x the no-abuser baseline
IDLE_OVERHEAD_GATE = 0.05  # brokered idle path <= 5% + noise

QUICK = {
    "well_behaved": 12,
    "workers": 4,
    "mean_ops": 10,
    "iso_rounds": 2,
    "idle_events": 256,
    "idle_rounds": 3,
}

FULL = {
    "well_behaved": 200,
    "workers": 8,
    "mean_ops": 12,
    "iso_rounds": 3,
    "idle_events": 1024,
    "idle_rounds": 5,
}

#: small interactive-style product (well-behaved tenants)
_WB_PAYLOAD = [float(i) for i in range(16)]
#: bulk product the abuser hammers the service with
_ABUSE_PAYLOAD = [float(i) for i in range(2048)]

#: registry used for the isolation runs: well-behaved tenants fall
#: through to an interactive default spec, the abuser is a registered
#: batch tenant with a real rate limit.
_ISOLATION_TENANTS = {
    "slots": 4,
    "interactive_reserve": 1,
    "slow_query_s": 0.05,
    "registry": [
        {"id": "abuser", "priority": "batch", "rate": 60, "burst": 8},
    ],
    "default": {"priority": "interactive"},
}

#: a broker that admits everything: open registry, stock (unlimited)
#: default spec -- the idle-overhead configuration.
_IDLE_TENANTS = {"slots": 8, "interactive_reserve": 2}

#: patient client policy for well-behaved tenants: a giveup here is a
#: starvation event, so the policy out-waits any transient shed.
_WB_POLICY = RetryPolicy(max_attempts=50, base_delay=0.001,
                         max_delay=0.05, deadline=30.0)


def _deploy(fabric: Fabric, tenants: Optional[dict] = None) -> BedrockServer:
    return BedrockServer(fabric, default_hepnos_config(
        "sm://node0/hepnos-mt", num_providers=2,
        event_databases=2, product_databases=2,
        run_databases=1, subrun_databases=1,
        tenants=tenants,
    ))


def _drive_tenant(server: BedrockServer, tenant: str, n_ops: int,
                  latencies: List[float]) -> None:
    """One tenant's session: ``n_ops`` timed create_event+store ops."""
    with hepnos.connect(servers=[server], tenant=tenant,
                        priority="interactive",
                        retry_policy=_WB_POLICY) as session:
        subrun = (session.create_dataset(f"mt/{tenant}")
                  .create_run(1).create_subrun(0))
        for i in range(n_ops):
            t0 = time.perf_counter()
            subrun.create_event(i).store(_WB_PAYLOAD, label="v")
            latencies.append(time.perf_counter() - t0)


def _abuse(server: BedrockServer, stop: threading.Event,
           counters: dict) -> None:
    """The abusive tenant: max-rate bulk stores, no retry manners.

    Sheds are caught and retried near-immediately (a tiny floor keeps
    the GIL from turning the retry spin into scheduler noise for every
    other thread -- an artifact of simulating tenants as threads, not
    a kindness the abuser extends on purpose).
    """
    with hepnos.connect(servers=[server], tenant="abuser",
                        retry_policy=RetryPolicy.none()) as session:
        subrun = (session.create_dataset("mt/abuser")
                  .create_run(1).create_subrun(0))
        i = 0
        while not stop.is_set():
            try:
                subrun.create_event(i % 512).store(_ABUSE_PAYLOAD, label="v")
                counters["stored"] += 1
                i += 1
            except ServiceBusy as exc:
                counters["shed_seen"] += 1
                time.sleep(min(exc.retry_after_s or 0.0005, 0.002))


def _percentile(samples: Sequence[float], fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[int(fraction * (len(ordered) - 1))]


def _heavy_tailed_ops(rng: random.Random, n_tenants: int, mean: int
                      ) -> List[int]:
    """Pareto(alpha=1.5) per-tenant demand scaled to roughly ``mean``."""
    raw = [rng.paretovariate(1.5) for _ in range(n_tenants)]
    scale = mean * n_tenants / sum(raw)
    return [max(1, min(20 * mean, int(r * scale))) for r in raw]


# -- isolation ---------------------------------------------------------------


def _run_population(demand: List[int], tag: str, workers: int,
                    with_abuser: bool) -> dict:
    """One population run: the tenant fleet, optionally plus the abuser."""
    tasks = [(f"wb-{tag}-{i}", n) for i, n in enumerate(demand)]
    expected = sum(demand)
    latencies: List[float] = []
    failures: List[tuple] = []
    lock = threading.Lock()

    fabric = Fabric(threaded=True)
    server = _deploy(fabric, _ISOLATION_TENANTS)
    fabric.runtime.start()
    stop = threading.Event()
    abuse_counters = {"stored": 0, "shed_seen": 0}
    abuser = None
    if with_abuser:
        abuser = threading.Thread(target=_abuse,
                                  args=(server, stop, abuse_counters))
        abuser.start()

    def worker() -> None:
        while True:
            with lock:
                if not tasks:
                    return
                tenant, n_ops = tasks.pop()
            mine: List[float] = []
            try:
                _drive_tenant(server, tenant, n_ops, mine)
            except Exception as exc:  # noqa: BLE001 - starvation count
                failures.append((tenant, repr(exc)))
            with lock:
                latencies.extend(mine)

    t0 = time.perf_counter()
    threads = [threading.Thread(target=worker) for _ in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    stop.set()
    if abuser is not None:
        abuser.join()
    stats = server.tenant_stats()
    fabric.runtime.shutdown()

    abuser_counters = stats["tenants"].get("abuser", {})
    sched = stats["scheduler"]
    return {
        "p99_s": _percentile(latencies, 0.99),
        "p50_s": _percentile(latencies, 0.50),
        "completed": len(latencies),
        "expected": expected,
        "starved": expected - len(latencies),
        "failures": failures,
        "wall_seconds": wall,
        "abuser_stored": abuse_counters["stored"],
        "abuser_admitted": abuser_counters.get("admitted", 0),
        "abuser_shed": abuser_counters.get("shed", 0),
        "preemptions": sched["preemptions"],
        "max_queued": sched["max_queued"],
    }


def bench_isolation(params: dict, seed: int = 0) -> dict:
    """Well-behaved p99 with vs without the abusive neighbour.

    Tenants are OS threads here, so the interpreter's 5ms GIL switch
    interval would dominate the contended tail (any thread holding the
    GIL for a full slice adds 5ms to a neighbour's op).  The bench
    lowers the switch interval for both runs of every round so the
    measurement compares broker scheduling, not GIL scheduling; the
    baseline and contended runs of a round also share the same demand
    draw, so the ratio is paired.
    """
    rng = random.Random(seed)
    switch_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0002)
    try:
        rounds = []
        total_starved = 0
        all_failures: List[tuple] = []
        for round_no in range(params["iso_rounds"]):
            demand = _heavy_tailed_ops(rng, params["well_behaved"],
                                       params["mean_ops"])
            base = _run_population(demand, f"{round_no}b",
                                   params["workers"], with_abuser=False)
            cont = _run_population(demand, f"{round_no}c",
                                   params["workers"], with_abuser=True)
            total_starved += base["starved"] + cont["starved"]
            all_failures += base["failures"] + cont["failures"]
            rounds.append((base, cont))
    finally:
        sys.setswitchinterval(switch_interval)

    base, best = min(rounds, key=lambda bc: bc[1]["p99_s"] / bc[0]["p99_s"])
    ratio = best["p99_s"] / base["p99_s"] if base["p99_s"] > 0 \
        else float("inf")
    n_ops = best["completed"]
    print(f"[isolation] baseline p99: {base['p99_s'] * 1e3:.2f}ms, "
          f"with abuser p99: {best['p99_s'] * 1e3:.2f}ms ({ratio:.2f}x), "
          f"{params['well_behaved']} tenants "
          f"(abuser shed {best['abuser_shed']}), starved {total_starved}")
    return {
        "ops_per_s": n_ops / best["wall_seconds"],
        "bytes_per_s": n_ops * 16 * 8 / best["wall_seconds"],
        "tenants": params["well_behaved"],
        "baseline_p99_s": base["p99_s"],
        "baseline_p50_s": base["p50_s"],
        "p99_ratio": ratio,
        **best,
        "starved": total_starved,
        "failures": all_failures,
    }


# -- broker-idle overhead ----------------------------------------------------


def _idle_workload(datastore, tag: str, n_events: int) -> float:
    """Batched ingest + PEP read-back: the canonical hot path, timed."""
    t0 = time.perf_counter()
    ds = datastore.create_dataset(f"idle/{tag}")
    with WriteBatch(datastore) as batch:
        run = ds.create_run(1, batch=batch)
        for s in range(4):
            subrun = run.create_subrun(s, batch=batch)
            for e in range(n_events // 4):
                event = subrun.create_event(e, batch=batch)
                event.store(_WB_PAYLOAD, label="v", batch=batch)
    pep = ParallelEventProcessor(
        datastore, options=PEPOptions(input_batch_size=64),
        products=[(vector_of(float), "v")])
    seen = {"n": 0}
    pep.process(ds, lambda ev: seen.__setitem__("n", seen["n"] + 1))
    elapsed = time.perf_counter() - t0
    assert seen["n"] == n_events, (seen["n"], n_events)
    return elapsed


def bench_idle_overhead(params: dict) -> dict:
    """Ingest + read-back: unbrokered server vs broker with idle quotas."""
    n_events, rounds = params["idle_events"], params["idle_rounds"]

    fabric = Fabric()
    server = _deploy(fabric)
    datastore = DataStore.connect(fabric, [server])
    _idle_workload(datastore, "warmup", n_events)  # warm-up
    plain = [_idle_workload(datastore, f"plain-{i}", n_events)
             for i in range(rounds)]
    fabric.runtime.shutdown()

    fabric = Fabric()
    server = _deploy(fabric, _IDLE_TENANTS)
    with hepnos.connect(servers=[server], tenant="idle") as session:
        _idle_workload(session.datastore, "warmup", n_events)  # warm-up
        brokered = [_idle_workload(session.datastore, f"brokered-{i}",
                                   n_events)
                    for i in range(rounds)]
        stats = server.tenant_stats()
    fabric.runtime.shutdown()

    counters = stats["tenants"]["idle"]
    assert counters["shed"] == 0, "idle quotas must never bind"

    best_plain, best_brokered = min(plain), min(brokered)
    noise = max(plain) / best_plain - 1
    overhead = best_brokered / best_plain - 1
    print(f"[broker-idle] unbrokered: {best_plain * 1e3:.1f}ms, "
          f"brokered: {best_brokered * 1e3:.1f}ms "
          f"(+{overhead * 100:.1f}%, noise {noise * 100:.1f}%)")
    return {
        "ops_per_s": n_events / best_brokered,
        "bytes_per_s": n_events * 16 * 8 / best_brokered,
        "unbrokered_seconds": best_plain,
        "brokered_seconds": best_brokered,
        "overhead": overhead,
        "noise": noise,
        "admitted": counters["admitted"],
    }


# -- driver ------------------------------------------------------------------


def run_benches(quick: bool, seed: int = 0) -> dict:
    params = QUICK if quick else FULL
    return {
        "quick": quick,
        "isolation_gate": ISOLATION_GATE,
        "idle_overhead_gate": IDLE_OVERHEAD_GATE,
        "benches": {
            "multitenant_isolation": bench_isolation(params, seed=seed),
            "broker_idle_overhead": bench_idle_overhead(params),
        },
    }


def evaluate_gates(results: dict) -> list:
    """Return human-readable gate failures (empty == pass)."""
    failures = []
    iso = results["benches"]["multitenant_isolation"]
    if iso["p99_ratio"] > results["isolation_gate"]:
        failures.append(
            f"multitenant_isolation: well-behaved p99 is "
            f"{iso['p99_ratio']:.2f}x the no-abuser baseline, gate is "
            f"{results['isolation_gate']:.1f}x")
    if iso["starved"] != 0:
        failures.append(
            f"multitenant_isolation: {iso['starved']} well-behaved ops "
            f"starved ({iso['failures'][:3]}...)")
    if iso["abuser_shed"] < 1:
        failures.append(
            "multitenant_isolation: the abuser was never shed; the "
            "isolation measurement exercised no admission control")
    idle = results["benches"]["broker_idle_overhead"]
    allowed = results["idle_overhead_gate"] + idle["noise"]
    if idle["overhead"] > allowed:
        failures.append(
            f"broker_idle_overhead: idle broker costs "
            f"{idle['overhead'] * 100:.1f}%, gate is "
            f"{allowed * 100:.1f}% (5% + measured noise)")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark multi-tenant isolation (abusive vs "
                    "well-behaved p99) and the broker-idle overhead gate.",
        parents=[common_parser()])
    args = parser.parse_args(argv)
    results = run_benches(quick=args.quick, seed=args.seed)
    failures = evaluate_gates(results)
    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True, default=str))
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
