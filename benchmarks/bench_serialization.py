"""Microbenchmark: the Boost-style serialization archives.

Products are serialized C++ objects in the paper; serialization cost
sits on both the store and load paths, so its rate matters to every
other number here.
"""

import numpy as np
import pytest

from repro.nova.datamodel import SliceData
from repro.nova.generator import BEAM, NovaGenerator
from repro.serial import dumps, loads


@pytest.fixture(scope="module")
def slices():
    generator = NovaGenerator(BEAM)
    out = []
    for e in range(64):
        out.extend(generator.slices_for_event(1000, 0, e))
    return out


def test_dump_slice_vector(benchmark, slices):
    blob = benchmark(dumps, slices)
    assert len(blob) > 1000


def test_load_slice_vector(benchmark, slices):
    blob = dumps(slices)
    out = benchmark(loads, blob)
    assert len(out) == len(slices)
    assert isinstance(out[0], SliceData)


def test_roundtrip_numpy_array(benchmark):
    arr = np.arange(100_000, dtype=np.float32)

    def roundtrip():
        return loads(dumps(arr))

    out = benchmark(roundtrip)
    assert np.array_equal(out, arr)


def test_roundtrip_nested_dict(benchmark):
    value = {f"k{i}": [i, float(i), f"v{i}"] for i in range(200)}

    def roundtrip():
        return loads(dumps(value))

    assert benchmark(roundtrip) == value
