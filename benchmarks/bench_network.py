"""A-fabric ablation: dragonfly interconnect behaviour.

The service traffic pattern -- many client nodes pulling bulk data from
few server nodes -- concentrates load on a few global links of the
dragonfly (the Aries topology Theta uses).  This bench measures that
concentration and the benefit of adaptive (UGAL-style) routing, plus
the failure mode the paper hit: injection saturation at the servers.
"""

import pytest

from repro.sim import Simulator
from repro.sim.network import DragonflyConfig, DragonflyNetwork

CONFIG = DragonflyConfig(groups=4, routers_per_group=4, nodes_per_router=4,
                         hop_latency=1e-6)


def run_traffic(pattern: str, adaptive: bool) -> tuple[float, dict]:
    """Simulate one traffic pattern; returns (makespan, link loads)."""
    sim = Simulator()
    network = DragonflyNetwork(sim, CONFIG, seed=11)
    nodes = CONFIG.total_nodes
    message = 50e6  # 50 MB bulk transfers

    flows = []
    if pattern == "uniform":
        # every node sends to a node in another group, spread evenly
        for src in range(nodes):
            dst = (src + nodes // 2 + 1) % nodes
            flows.append((src, dst))
    elif pattern == "hepnos":
        # 1-in-8 nodes are servers; every client pulls from its server
        servers = [n for n in range(nodes) if n % 8 == 0]
        for src in range(nodes):
            if src in servers:
                continue
            flows.append((servers[src % len(servers)], src))
    else:
        raise ValueError(pattern)

    def flow(src, dst):
        yield from network.send(src, dst, message, adaptive=adaptive)

    for src, dst in flows:
        sim.process(flow(src, dst))
    wall = sim.run()
    return wall, network.link_loads()


@pytest.mark.parametrize("pattern", ["uniform", "hepnos"])
@pytest.mark.parametrize("adaptive", [False, True])
def test_traffic_pattern(benchmark, pattern, adaptive):
    wall, loads = benchmark.pedantic(run_traffic, args=(pattern, adaptive),
                                     rounds=1, iterations=1)
    global_loads = [v for k, v in loads.items() if k.startswith("glb")]
    imbalance = max(global_loads) / (sum(global_loads) / len(global_loads))
    print(f"\n[{pattern}, adaptive={adaptive}] makespan={wall * 1e3:.1f} ms, "
          f"global-link imbalance={imbalance:.2f}x")


def test_hepnos_pattern_concentrates_injection(benchmark):
    """Server-centric traffic hammers the few server NICs: the hottest
    injection link carries many times the uniform pattern's -- exactly
    the oversaturation failure mode the paper reports (section IV-E)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, uniform_loads = run_traffic("uniform", adaptive=False)
    _, hepnos_loads = run_traffic("hepnos", adaptive=False)

    def hottest_injection(loads):
        return max(v for k, v in loads.items() if k.startswith("inj"))

    u, h = hottest_injection(uniform_loads), hottest_injection(hepnos_loads)
    print(f"\nhottest injection link: uniform {u / 1e6:.0f} MB vs "
          f"hepnos {h / 1e6:.0f} MB ({h / u:.1f}x)")
    assert h > 4 * u  # 7 clients per server NIC vs 1-to-1 uniform


def test_adaptive_routing_helps_hotspots(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    wall_min, _ = run_traffic("hepnos", adaptive=False)
    wall_ada, _ = run_traffic("hepnos", adaptive=True)
    print(f"\nhepnos-pattern makespan: minimal {wall_min * 1e3:.1f} ms, "
          f"adaptive {wall_ada * 1e3:.1f} ms")
    assert wall_ada <= wall_min * 1.05  # adaptive never much worse
