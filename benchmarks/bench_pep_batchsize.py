"""A-pep ablation: ParallelEventProcessor batch-size tuning.

The paper's configuration (section IV-D) loads events in input batches
of 16384 ("fewer RPCs but with a large data transfer payload") and
shares them in dispatch batches of 64 ("fine-grain load-balancing").
This bench sweeps both knobs:

- on the real stack: RPC count vs input batch size;
- on the simulator: 256-node throughput vs dispatch batch size, showing
  the load-balance / overhead trade-off around the paper's 64.
"""

import pytest

from repro.hepnos import (
    ParallelEventProcessor,
    PEPOptions,
    WriteBatch,
    vector_of,
)
from repro.perf import HEPnOSModel, HEPnOSParams, LARGE
from repro.serial import serializable

N_EVENTS = 600


@serializable("bench.PepSlice")
class PepSlice:
    def __init__(self, sid=0):
        self.sid = sid

    def serialize(self, ar):
        self.sid = ar.io(self.sid)


@pytest.fixture()
def dataset(datastore):
    ds = datastore.create_dataset("bench/pep")
    with WriteBatch(datastore) as batch:
        run = ds.create_run(1, batch=batch)
        for s in range(4):
            subrun = run.create_subrun(s, batch=batch)
            for e in range(N_EVENTS // 4):
                event = subrun.create_event(e, batch=batch)
                event.store([PepSlice(s * 1000 + e)], label="s", batch=batch)
    return ds


@pytest.mark.parametrize("input_batch", [16, 64, 256])
def test_input_batch_size_rpcs(benchmark, datastore, fabric, dataset,
                               input_batch):
    def run():
        pep = ParallelEventProcessor(
            datastore, options=PEPOptions(input_batch_size=input_batch),
            products=[(vector_of(PepSlice), "s")],
        )
        count = {"n": 0}
        pep.process(dataset, lambda ev: count.__setitem__("n", count["n"] + 1))
        return count["n"]

    fabric.stats.reset()
    processed = benchmark.pedantic(run, rounds=2, iterations=1)
    rpcs = fabric.stats.rpc_count / 2
    print(f"\n[input_batch={input_batch}] RPCs per pass: {rpcs:.0f} "
          f"({rpcs / N_EVENTS:.3f}/event)")
    assert processed == N_EVENTS


def test_bigger_input_batches_fewer_rpcs(benchmark, datastore, fabric, dataset):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    costs = {}
    for input_batch in (16, 256):
        pep = ParallelEventProcessor(
            datastore, options=PEPOptions(input_batch_size=input_batch),
            products=[(vector_of(PepSlice), "s")],
        )
        fabric.stats.reset()
        pep.process(dataset, lambda ev: None)
        costs[input_batch] = fabric.stats.rpc_count
    print(f"\nRPCs: batch=16 -> {costs[16]}, batch=256 -> {costs[256]}")
    assert costs[256] < costs[16] / 3


@pytest.mark.parametrize("dispatch", [4, 64, 4096])
def test_dispatch_batch_throughput_sim(benchmark, dispatch):
    """Simulator: dispatch-batch sweep at 256 nodes (paper tuned to 64)."""

    def run():
        params = HEPnOSParams(dispatch_batch_size=dispatch)
        model = HEPnOSModel(params)
        return model.simulate(256, LARGE.scaled(0.25), backend="map")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[dispatch={dispatch}] simulated 256-node throughput: "
          f"{result.throughput:,.0f} slices/s")


def test_dispatch_sweet_spot_sim(benchmark):
    """Tiny dispatch batches pay queue overhead; huge ones imbalance."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    throughputs = {}
    for dispatch in (64, 16384):
        params = HEPnOSParams(dispatch_batch_size=dispatch)
        result = HEPnOSModel(params).simulate(256, LARGE.scaled(0.25),
                                              backend="map")
        throughputs[dispatch] = result.throughput
    print(f"\nsimulated throughput: dispatch=64 -> "
          f"{throughputs[64]:,.0f}, dispatch=16384 -> "
          f"{throughputs[16384]:,.0f}")
    # Whole-input-batch dispatch (16384) loses fine-grained balancing.
    assert throughputs[64] > throughputs[16384]
