"""A-batch ablation: WriteBatch / AsynchronousWriteBatch vs naive stores.

The paper motivates batching (section II-D): datasets hold millions of
small products, so per-item RPCs dominate.  This bench stores the same
set of products three ways and compares both time and RPC count.
"""

import pytest

from repro.hepnos import AsynchronousWriteBatch, WriteBatch
from repro.serial import serializable

N_EVENTS = 300


@serializable("bench.Quant")
class Quant:
    def __init__(self, value=0.0):
        self.value = value

    def serialize(self, ar):
        self.value = ar.io(self.value)


@pytest.fixture()
def subrun(datastore):
    ds = datastore.create_dataset("bench/batching")
    counter = {"n": 0}

    def fresh():
        counter["n"] += 1
        return ds.create_run(counter["n"]).create_subrun(0)

    return fresh


def store_unbatched(datastore, subrun):
    for i in range(N_EVENTS):
        event = subrun.create_event(i)
        event.store(Quant(float(i)), label="q")


def store_batched(datastore, subrun):
    with WriteBatch(datastore) as batch:
        for i in range(N_EVENTS):
            event = subrun.create_event(i, batch=batch)
            event.store(Quant(float(i)), label="q", batch=batch)


def store_async(datastore, subrun):
    with AsynchronousWriteBatch(datastore, flush_threshold=128) as batch:
        for i in range(N_EVENTS):
            event = subrun.create_event(i, batch=batch)
            event.store(Quant(float(i)), label="q", batch=batch)


@pytest.mark.parametrize("mode", ["unbatched", "writebatch", "async"])
def test_store_products(benchmark, datastore, fabric, subrun, mode):
    fn = {"unbatched": store_unbatched, "writebatch": store_batched,
          "async": store_async}[mode]

    def run():
        fn(datastore, subrun())

    fabric.stats.reset()
    benchmark.pedantic(run, rounds=3, iterations=1)
    rpcs_per_item = fabric.stats.rpc_count / (3 * 2 * N_EVENTS)
    print(f"\n[{mode}] RPCs per stored item: {rpcs_per_item:.3f}")
    if mode == "unbatched":
        assert rpcs_per_item > 0.9  # ~1 RPC per item
    else:
        assert rpcs_per_item < 0.2  # batched into few RPCs


def test_rpc_reduction_factor(benchmark, datastore, fabric, subrun):
    """Headline ablation number: RPC count, batched vs not."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fabric.stats.reset()
    store_unbatched(datastore, subrun())
    unbatched_rpcs = fabric.stats.rpc_count
    fabric.stats.reset()
    store_batched(datastore, subrun())
    batched_rpcs = fabric.stats.rpc_count
    factor = unbatched_rpcs / max(batched_rpcs, 1)
    print(f"\nRPC reduction from WriteBatch: {unbatched_rpcs} -> "
          f"{batched_rpcs} ({factor:.0f}x fewer)")
    assert factor > 10
