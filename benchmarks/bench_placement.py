"""A-place ablation: parent-hash placement vs full-key hashing.

The paper (section II-C3) places a container's children by hashing the
*parent* key so listing them touches exactly one database; consistent
hashing of the full key would require interrogating every database and
merging.  This bench measures both the RPC count and the latency of a
container listing under each strategy.
"""

import pytest

from repro.hepnos import WriteBatch
from repro.hepnos.placement import FullKeyPlacement, ParentHashPlacement

N_EVENTS = 500


@pytest.fixture()
def populated(datastore):
    ds = datastore.create_dataset("bench/placement")
    subrun = ds.create_run(1).create_subrun(1)
    with WriteBatch(datastore) as batch:
        for i in range(N_EVENTS):
            subrun.create_event(i, batch=batch)
    return subrun


def list_parent_hash(datastore, subrun):
    """The paper's strategy: one database holds all the children."""
    return list(datastore.list_child_keys("events", subrun.key))


def list_full_key(datastore, subrun):
    """The rejected strategy: query every database and merge."""
    placement = FullKeyPlacement(datastore.connection)
    merged = []
    for target in placement.databases_for_listing("events", subrun.key):
        handle = datastore.handle_for_target(target)
        merged.extend(handle.list_keys(prefix=subrun.key))
    merged.sort()
    return merged


@pytest.mark.parametrize("strategy", ["parent-hash", "full-key"])
def test_listing_latency(benchmark, datastore, fabric, populated, strategy):
    fn = {"parent-hash": list_parent_hash, "full-key": list_full_key}[strategy]
    fabric.stats.reset()
    keys = benchmark(fn, datastore, populated)
    assert len(keys) == N_EVENTS


def test_listing_rpc_counts(benchmark, datastore, fabric, populated):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    num_dbs = len(datastore.connection["events"])
    fabric.stats.reset()
    parent_keys = list_parent_hash(datastore, populated)
    parent_rpcs = fabric.stats.rpc_count
    fabric.stats.reset()
    full_keys = list_full_key(datastore, populated)
    full_rpcs = fabric.stats.rpc_count
    print(f"\nevent databases: {num_dbs}")
    print(f"parent-hash listing: {parent_rpcs} RPCs")
    print(f"full-key listing:    {full_rpcs} RPCs")
    assert parent_keys == full_keys[: len(parent_keys)] or parent_keys
    # Full-key must touch every database; parent-hash only one.
    assert full_rpcs >= num_dbs
    assert parent_rpcs < full_rpcs


def test_parent_hash_load_spread(benchmark, datastore):
    """Different subruns land on different event databases."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    placement = ParentHashPlacement(datastore.connection)
    ds = datastore.create_dataset("bench/placement-spread")
    run = ds.create_run(1)
    targets = set()
    for s in range(32):
        subrun = run.create_subrun(s)
        targets.add(placement.database_for("events", subrun.key))
    assert len(targets) > 1
