"""Shared helpers for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only -s

Figure benches print the regenerated table rows and assert the paper's
qualitative shape claims.  Set ``REPRO_BENCH_REPEATS`` to change the
per-point repeat count (default 2).
"""

import os

import pytest

from repro.bedrock import BedrockServer, default_hepnos_config
from repro.hepnos import DataStore
from repro.mercury import Fabric


def bench_repeats() -> int:
    return int(os.environ.get("REPRO_BENCH_REPEATS", "2"))


@pytest.fixture()
def fabric():
    return Fabric(threaded=True)


@pytest.fixture()
def service(fabric):
    servers = []
    for i in range(2):
        servers.append(BedrockServer(fabric, default_hepnos_config(
            f"sm://node{i}/hepnos", num_providers=4,
            event_databases=4, product_databases=4,
            run_databases=2, subrun_databases=2, dataset_databases=1,
        )))
    fabric.runtime.start()
    yield servers
    fabric.runtime.shutdown()


@pytest.fixture()
def datastore(fabric, service):
    return DataStore.connect(fabric, service)
