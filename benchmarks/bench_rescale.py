"""A-rescale ablation: storage rescaling cost and minimality.

The paper cites Pufferscale [27]: rescaling "could further improve
HEPnOS's potential by allowing users to add and remove storage
resources while HEP applications are using it."  Measures migration
throughput and verifies the consistent-hashing minimal-move property.
"""

import pytest

from repro.bedrock import BedrockServer, default_hepnos_config
from repro.hepnos import WriteBatch
from repro.rescale import add_server, execute_rescale, plan_rescale
from repro.serial import serializable


@serializable("benchr.Payload")
class Payload:
    def __init__(self, data=b""):
        self.data = data

    def serialize(self, ar):
        self.data = ar.io(self.data)


def populate(datastore, tag, events=200):
    ds = datastore.create_dataset(f"bench/rescale-{tag}")
    with WriteBatch(datastore) as batch:
        subrun = ds.create_run(1, batch=batch).create_subrun(1, batch=batch)
        for e in range(events):
            event = subrun.create_event(e, batch=batch)
            event.store(Payload(b"x" * 200), label="p", batch=batch)


def extra_server(fabric, index):
    return BedrockServer(fabric, default_hepnos_config(
        f"sm://resize{index}/hepnos", num_providers=4,
        event_databases=4, product_databases=4,
        run_databases=2, subrun_databases=2,
    ))


def test_plan_cost(benchmark, fabric, datastore):
    populate(datastore, "plan")
    joined = add_server(datastore.connection, extra_server(fabric, 0))
    plan = benchmark(plan_rescale, datastore, joined)
    assert plan.keys_to_move + plan.keys_stayed > 0


def test_migration_throughput(benchmark, fabric, datastore):
    populate(datastore, "exec", events=300)
    counter = {"i": 0}

    def grow_once():
        counter["i"] += 1
        joined = add_server(datastore.connection,
                            extra_server(fabric, counter["i"]))
        plan = plan_rescale(datastore, joined)
        stats = execute_rescale(datastore, plan)
        return stats

    stats = benchmark.pedantic(grow_once, rounds=2, iterations=1)
    print(f"\nlast grow: moved {stats.keys_moved} keys "
          f"({stats.bytes_moved} B), {stats.moved_fraction:.1%} of data")


def test_minimal_movement_property(benchmark, fabric, datastore):
    """Adding 1/(n+1) of capacity should move roughly that fraction."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    populate(datastore, "minimal", events=400)
    joined = add_server(datastore.connection, extra_server(fabric, 90))
    plan = plan_rescale(datastore, joined)
    total = plan.keys_to_move + plan.keys_stayed
    fraction = plan.keys_to_move / total
    # 2 old nodes + 1 new node of equal capacity: expect ~1/3 moved;
    # placement granularity is the parent group, so allow a wide band.
    print(f"\nmoved fraction: {fraction:.1%} (ideal ~33%)")
    assert 0.05 < fraction < 0.65
