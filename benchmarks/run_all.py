#!/usr/bin/env python
"""Run the bench suite and write the ``BENCH_PR10.json`` baseline.

Every entry under ``benches`` reports at least ``ops_per_s`` and
``bytes_per_s`` so successive baselines (``BENCH_*.json``) can be
diffed mechanically; the format is documented in ``EXPERIMENTS.md``.
The suite is the gated :mod:`bench_dataplane` measurements, the gated
:mod:`bench_scaling` provider curves, the gated :mod:`bench_columnar`
projection/selection measurements, the gated :mod:`bench_fault_overhead`
fault-path costs, the gated :mod:`bench_recovery` durability timings
(WAL replay, failover reads, fault-free WAL overhead), the gated
:mod:`bench_multitenant` isolation and broker-idle measurements, the
gated :mod:`bench_yokan_backends` storage-engine suite (sustained-write
throughput, point-read p99s, write/read amplification, block-cache
warm-vs-cold), and two micro-benchmarks of the wire-level codecs::

    PYTHONPATH=src python benchmarks/run_all.py              # quick, writes BENCH_PR10.json
    PYTHONPATH=src python benchmarks/run_all.py --full -o /tmp/bench.json

Exits nonzero if any gate fails, so the baseline can never be
regenerated from a regressed tree.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional, Sequence

import bench_columnar
import bench_dataplane
import bench_fault_overhead
import bench_multitenant
import bench_recovery
import bench_scaling
import bench_yokan_backends
from repro.yokan import packed, wire

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_PR10.json")


def _best_of(fn, rounds: int = 5) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_packed_codec() -> dict:
    """Pack + unpack of a typical prefix-scan result set."""
    groups = [
        [(b"ev%04d#slices" % g, bytes(range(256)) * 2),
         (b"ev%04d#header" % g, bytes(64))]
        for g in range(64)
    ]
    nbytes = len(packed.pack_groups(groups))
    npairs = sum(len(g) for g in groups)

    def roundtrip() -> None:
        buf = packed.pack_groups(groups)
        out = packed.unpack_groups(memoryview(buf), len(groups))
        assert len(out) == len(groups)

    best = _best_of(roundtrip)
    print(f"[packed-codec] {npairs} pairs, {nbytes} bytes: "
          f"{best * 1e3:.2f}ms/roundtrip")
    return {"ops_per_s": npairs / best, "bytes_per_s": 2 * nbytes / best,
            "pairs": npairs, "bytes_per_pass": nbytes}


def bench_wire_seal_unseal() -> dict:
    """One sealed (checksummed) envelope round trip on a 4 KiB body."""
    body = bytes(range(256)) * 16

    def roundtrip() -> None:
        assert wire.unseal(wire.seal(body)) == body

    def hundred() -> None:
        for _ in range(100):
            roundtrip()

    best = _best_of(hundred) / 100
    print(f"[wire-seal] {len(body)} bytes: {best * 1e6:.1f}us/roundtrip")
    return {"ops_per_s": 1 / best, "bytes_per_s": 2 * len(body) / best,
            "bytes_per_pass": len(body)}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the bench suite and emit the BENCH_PR10.json "
                    "perf baseline.")
    parser.add_argument("--full", action="store_true",
                        help="full corpus and the 2x acceptance gates "
                             "(default: quick)")
    parser.add_argument("--seed", type=int, default=7,
                        help="chaos seed for the identity check")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT,
                        help="output path (default: repo-root "
                             "BENCH_PR9.json)")
    args = parser.parse_args(argv)

    results = bench_dataplane.run_benches(quick=not args.full,
                                          seed=args.seed)
    failures = bench_dataplane.evaluate_gates(results)
    scaling_params = bench_scaling.FULL if args.full \
        else bench_scaling.COMMITTED
    scaling = bench_scaling.run_scaling(scaling_params)
    failures += bench_scaling.evaluate_gates(scaling)
    columnar = bench_columnar.run_benches(quick=not args.full,
                                          seed=args.seed)
    failures += bench_columnar.evaluate_gates(columnar)
    fault = bench_fault_overhead.run_benches()
    failures += bench_fault_overhead.evaluate_gates(fault)
    recovery = bench_recovery.run_benches(quick=not args.full)
    failures += bench_recovery.evaluate_gates(recovery)
    multitenant = bench_multitenant.run_benches(quick=not args.full,
                                                seed=args.seed)
    failures += bench_multitenant.evaluate_gates(multitenant)
    backends = bench_yokan_backends.run_benches(quick=not args.full,
                                                seed=args.seed)
    failures += bench_yokan_backends.evaluate_gates(backends)
    benches = {name: data
               for name, data in results["benches"].items()
               if name != "workflow_identity"}
    for name, data in columnar["benches"].items():
        if name != "columnar_identity":
            benches[name] = data
    benches.update(fault["benches"])
    benches.update(recovery["benches"])
    benches.update(multitenant["benches"])
    benches.update(backends["benches"])
    benches["packed_codec"] = bench_packed_codec()
    benches["wire_seal_unseal"] = bench_wire_seal_unseal()
    doc = {
        "schema": "hepnos-bench/v1",
        "baseline": "PR10",
        "generated_by": "benchmarks/run_all.py"
                        + (" --full" if args.full else ""),
        "quick": not args.full,
        "speedup_gate": results["speedup_gate"],
        "cache_overhead_gate": results["cache_overhead_gate"],
        "columnar_speedup_gate": columnar["speedup_gate"],
        "columnar_bytes_gate": columnar["bytes_gate"],
        "fault_overhead_gate": fault["fault_overhead_gate"],
        "wal_overhead_gate": recovery["wal_overhead_gate"],
        "isolation_gate": multitenant["isolation_gate"],
        "idle_overhead_gate": multitenant["idle_overhead_gate"],
        "backend_ingest_gate": backends["ingest_gate"],
        "backend_ingest_ratio": backends["ingest_ratio"],
        "backend_warm_p99_us": backends["warm_p99_us"],
        "backend_nocache_p99_us": backends["nocache_p99_us"],
        "gates_passed": not failures,
        "benches": benches,
        "scaling": scaling,
        "checks": {"workflow_identity":
                   results["benches"]["workflow_identity"],
                   "columnar_identity":
                   columnar["benches"]["columnar_identity"]},
    }
    with open(args.output, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"baseline written to {args.output}")
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
