"""AsyncEngine overlap: non-blocking prefetch vs blocking loads.

The paper's pipelining claim (section II-D): hiding store latency
behind per-event computation is where HEPnOS's speedup over file-based
processing comes from.  This bench builds the scenario the AsyncEngine
exists for -- a fabric with response latency (server -> client messages
sleep, as a congested NIC would) and a PEP whose handler does real
per-event work -- and measures one full pass three ways:

1. blocking loads (no AsyncEngine): every ``get_multi`` stalls the
   reader for the injected latency;
2. pipelined loads (AsyncEngine): page N+1's ``get_multi_nb`` is in
   flight while page N's events are processed, so latency hides behind
   compute (``PEPStatistics.overlap_seconds`` records how much);
3. blocking loads on a clean fabric with and without the async layer
   importable on the path -- the "you don't pay for what you don't
   use" check.

Acceptance: async/sync throughput ratio >= 1.25x under latency, <2%
overhead without an engine (asserted with noise headroom; printed
numbers are the real measurement).
"""

import time

import pytest

from repro.hepnos import (
    AsyncEngine,
    ParallelEventProcessor,
    PEPOptions,
    WriteBatch,
    vector_of,
)
from repro.mercury.fabric import FaultModel
from repro.serial import serializable

N_SUBRUNS = 4
N_EVENTS = 256  # total, spread over the subruns
INPUT_BATCH = 32
RESPONSE_LATENCY = 0.002  # seconds, server -> client messages only
COMPUTE_SECONDS = 80e-6  # per-event handler busy time


@serializable("bench.OverlapHit")
class OverlapHit:
    def __init__(self, e=0.0):
        self.e = e

    def serialize(self, ar):
        self.e = ar.io(self.e)


class ResponseLatency(FaultModel):
    """Delay only server -> client traffic.

    Request-path latency is paid synchronously at issue time (the
    client thread sleeps inside ``iforward``), so only the response leg
    models latency an asynchronous client can actually hide.
    """

    def __init__(self, server_nodes, delay):
        self.server_nodes = frozenset(server_nodes)
        self.delay = delay

    def latency(self, src, dst, nbytes):
        if src.node in self.server_nodes and dst.node not in self.server_nodes:
            return self.delay
        return 0.0


@pytest.fixture()
def dataset(datastore):
    ds = datastore.create_dataset("bench/async-overlap")
    with WriteBatch(datastore) as batch:
        run = ds.create_run(1, batch=batch)
        for s in range(N_SUBRUNS):
            subrun = run.create_subrun(s, batch=batch)
            for e in range(N_EVENTS // N_SUBRUNS):
                event = subrun.create_event(e, batch=batch)
                event.store([OverlapHit(float(e))], label="hits",
                            batch=batch)
    return ds


def _pep_pass(datastore, dataset, async_engine=None):
    pep = ParallelEventProcessor(
        datastore,
        options=PEPOptions(input_batch_size=INPUT_BATCH),
        products=[(vector_of(OverlapHit), "hits")],
        async_engine=async_engine,
    )
    count = {"n": 0}

    def handle(event):
        count["n"] += 1
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < COMPUTE_SECONDS:
            pass  # the analysis cut the latency should hide behind

    stats = pep.process(dataset, handle)
    assert count["n"] == N_EVENTS
    return stats


def _timed_pass(datastore, dataset, async_engine=None, rounds=3):
    best, stats = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        stats = _pep_pass(datastore, dataset, async_engine=async_engine)
        best = min(best, time.perf_counter() - t0)
    return best, stats


def test_async_pipeline_hides_response_latency(benchmark, fabric, datastore,
                                               dataset):
    """>= 1.25x PEP throughput with the AsyncEngine under latency."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _pep_pass(datastore, dataset)  # warm-up, clean fabric

    server_nodes = {a.node for a in fabric.addresses
                    if a.node.startswith("node")}
    fabric.fault_model = ResponseLatency(server_nodes, RESPONSE_LATENCY)
    try:
        sync_time, _ = _timed_pass(datastore, dataset)
        engine = AsyncEngine(max_inflight=8)
        async_time, stats = _timed_pass(datastore, dataset,
                                        async_engine=engine)
        engine.drain(raise_errors=True)
    finally:
        fabric.fault_model = FaultModel()

    speedup = sync_time / async_time
    print(f"\n[overlap] blocking: {sync_time * 1e3:.0f}ms/pass, "
          f"pipelined: {async_time * 1e3:.0f}ms/pass "
          f"({speedup:.2f}x, {stats.overlap_seconds * 1e3:.0f}ms of load "
          f"latency hidden, {stats.prefetch_wait_seconds * 1e3:.0f}ms "
          "still exposed)")
    assert stats.overlap_seconds > 0.0  # the pipeline actually overlapped
    assert speedup >= 1.25


def test_no_engine_overhead_is_noise(benchmark, datastore, dataset):
    """The async layer costs ~nothing when no AsyncEngine is attached.

    Target is <2%; asserted with generous noise headroom (same
    convention as bench_fault_overhead) so CI stays stable.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _pep_pass(datastore, dataset)  # warm-up

    with_options, _ = _timed_pass(datastore, dataset)

    def baseline_pass():
        pep = ParallelEventProcessor(
            datastore, options=PEPOptions(input_batch_size=INPUT_BATCH),
            products=[(vector_of(OverlapHit), "hits")],
        )
        count = {"n": 0}

        def handle(event):
            count["n"] += 1
            t0 = time.perf_counter()
            while time.perf_counter() - t0 < COMPUTE_SECONDS:
                pass

        pep.process(dataset, handle)
        assert count["n"] == N_EVENTS

    best_baseline = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        baseline_pass()
        best_baseline = min(best_baseline, time.perf_counter() - t0)

    overhead = with_options / best_baseline - 1
    print(f"\n[no-engine] baseline: {best_baseline * 1e3:.0f}ms/pass, "
          f"options path: {with_options * 1e3:.0f}ms/pass "
          f"(+{overhead * 100:.1f}%)")
    assert with_options < best_baseline * 1.25
