#!/usr/bin/env python
"""Provider scaling benchmark: throughput curves across shard counts.

Measures how ingest and read throughput grow as Yokan providers are
added (the paper's figures 2 and 6 shape, on the in-process service).
The loopback fabric serves RPCs on Python threads, so raw CPU work
cannot scale past the GIL; instead a :class:`ServiceTimeModel` charges
every server time proportional to the bytes it handles, *slept on the
server's own response path*.  Sleeps release the GIL, so the model
turns provider count into genuine parallel capacity and the curves
measure the client's ability to keep N shards busy:

- **ingest**: :class:`AsynchronousWriteBatch` fan-out -- one in-flight
  ``put_multi`` per shard;
- **read**: a :class:`ParallelEventProcessor` pass with packed loads --
  the datastore fans one ``load_prefix_packed`` per shard out of every
  event page (products place by event key, so a page spans shards).

Both phases also verify content: the read pass must see every ingested
event with identical payload digests across all provider counts.

Exit status is nonzero if a throughput curve fails the monotonic gate::

    PYTHONPATH=src python benchmarks/bench_scaling.py --quick
    PYTHONPATH=src python benchmarks/bench_scaling.py --providers 1,2,4,8
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from collections import defaultdict
from typing import Optional, Sequence

from repro.bedrock import BedrockServer, default_hepnos_config
from repro.hepnos import (
    AsynchronousWriteBatch,
    DataStore,
    ParallelEventProcessor,
    PEPOptions,
    ProductCacheOptions,
    vector_of,
)
from repro.mercury import Fabric
from repro.mercury.fabric import FaultModel
from repro.nova.datamodel import EventHeader, SliceData
from repro.nova.generator import COSMIC, NovaGenerator
from repro.serial import dumps

QUICK = dict(providers=(1, 2), events=256, subruns=8, rounds=1)
COMMITTED = dict(providers=(1, 2, 4), events=512, subruns=16, rounds=2)
FULL = dict(providers=(1, 2, 4, 8), events=1024, subruns=32, rounds=2)

#: modeled server cost: seconds per byte handled + per response sent.
PER_BYTE = 1e-6  # ~1 MB/s per provider: the model, not the machine
FLAT = 0.0002


class ServiceTimeModel(FaultModel):
    """Charge servers service time for the bytes they handle.

    Request bytes arriving at a server accumulate in a per-node inbox;
    when that server *sends* (its response, or a bulk push), the inbox
    drains and the send is delayed by ``flat + per_byte * (drained +
    sent)``.  The delay is slept by the sending server's own thread, so
    one node's work serializes on its threads while other nodes proceed
    -- provider count becomes real capacity despite the GIL.
    """

    def __init__(self, server_nodes, per_byte: float = PER_BYTE,
                 flat: float = FLAT):
        self.server_nodes = set(server_nodes)
        self.per_byte = per_byte
        self.flat = flat
        self._inbox: dict[str, int] = defaultdict(int)
        self._lock = threading.Lock()

    def latency(self, src, dst, nbytes: int) -> float:
        server_src = src.node in self.server_nodes
        server_dst = dst.node in self.server_nodes
        if server_dst and not server_src:
            with self._lock:
                self._inbox[dst.node] += nbytes
            return 0.0
        if server_src and not server_dst:
            with self._lock:
                pending = self._inbox.pop(src.node, 0)
            return self.flat + (pending + nbytes) * self.per_byte
        return 0.0


def _deploy(fabric: Fabric, providers: int) -> list:
    """One server per simulated node, one database of each kind each."""
    servers = [
        BedrockServer(fabric, default_hepnos_config(
            f"sm://shard{i}/hepnos", num_providers=1, event_databases=1,
            product_databases=1, run_databases=1, subrun_databases=1,
            dataset_databases=1,
        ))
        for i in range(providers)
    ]
    fabric.runtime.start()
    return servers


def _ingest(datastore: DataStore, events: int, subruns: int) -> float:
    """Timed: write ``events`` events (slices + header) across
    ``subruns`` subruns through an asynchronous batch."""
    generator = NovaGenerator(COSMIC)
    ds = datastore.create_dataset("bench/scaling")
    t0 = time.perf_counter()
    with AsynchronousWriteBatch(datastore, flush_threshold=128) as batch:
        run = ds.create_run(1, batch=batch)
        for s in range(subruns):
            subrun = run.create_subrun(s, batch=batch)
            for e in range(events // subruns):
                event = subrun.create_event(e, batch=batch)
                event.store(generator.slices_for_event(1, s, e), label="s",
                            batch=batch)
                event.store(generator.header_for_event(1, s, e), label="h",
                            batch=batch)
    return time.perf_counter() - t0


def _read_pass(datastore: DataStore) -> tuple[float, bytes]:
    """Timed PEP pass over the ingested dataset; returns (seconds,
    content digest) so runs are comparable across shard counts."""
    pep = ParallelEventProcessor(
        datastore,
        options=PEPOptions(input_batch_size=64, dispatch_batch_size=8,
                           packed_loads=True),
        products=[(vector_of(SliceData), "s"), (EventHeader, "h")],
    )
    seen: list = []

    def probe(event) -> None:
        slices = event.load(vector_of(SliceData), label="s")
        seen.append((event.triple(), len(slices)))

    t0 = time.perf_counter()
    pep.process(datastore["bench/scaling"], probe)
    elapsed = time.perf_counter() - t0
    return elapsed, dumps(sorted(seen))


def _one_topology(providers: int, events: int, subruns: int,
                  rounds: int) -> dict:
    fabric = Fabric(threaded=True)
    servers = _deploy(fabric, providers)
    try:
        datastore = DataStore.connect(
            fabric, servers,
            product_cache=ProductCacheOptions(enabled=False),
        )
        fabric.fault_model = ServiceTimeModel(
            [server.address.node for server in servers])
        ingest_s = _ingest(datastore, events, subruns)
        best_read, digest = float("inf"), b""
        for _ in range(rounds):
            read_s, digest = _read_pass(datastore)
            best_read = min(best_read, read_s)
        shard_epoch = datastore.placement.epoch
    finally:
        fabric.fault_model = FaultModel()
        fabric.runtime.shutdown()
    return {
        "providers": providers,
        "ingest_s": ingest_s,
        "ingest_events_per_s": events / ingest_s,
        "read_s": best_read,
        "read_events_per_s": events / best_read,
        "events": events,
        "digest": digest,
        "epoch": shard_epoch,
    }


def run_scaling(params: dict,
                providers: Optional[Sequence[int]] = None) -> dict:
    """Strong scaling (fixed events) + weak scaling (events per
    provider fixed) across the provider counts."""
    counts = list(providers or params["providers"])
    strong, weak = [], []
    digests = set()
    for count in counts:
        point = _one_topology(count, params["events"], params["subruns"],
                              params["rounds"])
        digests.add(point.pop("digest"))
        print(f"[strong] {count} provider(s): "
              f"ingest {point['ingest_events_per_s']:.0f} ev/s, "
              f"read {point['read_events_per_s']:.0f} ev/s")
        strong.append(point)
    for count in counts:
        point = _one_topology(count, params["events"] * count,
                              params["subruns"] * count, params["rounds"])
        point.pop("digest")
        point["efficiency"] = (point["ingest_events_per_s"]
                               / max(strong[0]["ingest_events_per_s"], 1e-9)
                               / count)
        print(f"[weak]   {count} provider(s) x {params['events']} events: "
              f"ingest {point['ingest_events_per_s']:.0f} ev/s")
        weak.append(point)
    identical = len(digests) == 1
    print(f"[parity] read digests identical across "
          f"{counts} providers: {identical}")
    return {
        "providers": counts,
        "events": params["events"],
        "per_byte_model": PER_BYTE,
        "strong": strong,
        "weak": weak,
        "content_identical": identical,
    }


def evaluate_gates(results: dict) -> list:
    """Monotonic throughput up to 4 providers, identical content."""
    failures = []
    if not results["content_identical"]:
        failures.append("scaling: read content differs across shard counts")
    gated = [p for p in results["strong"] if p["providers"] <= 4]
    for metric in ("ingest_events_per_s", "read_events_per_s"):
        series = [(p["providers"], p[metric]) for p in gated]
        for (n0, v0), (n1, v1) in zip(series, series[1:]):
            if v1 <= v0:
                failures.append(
                    f"scaling/{metric}: {n1} providers ({v1:.0f} ev/s) "
                    f"not faster than {n0} ({v0:.0f} ev/s)")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure ingest/read throughput scaling across "
                    "provider counts and gate on monotonic growth.")
    parser.add_argument("--quick", action="store_true",
                        help="2 provider counts, small corpus (CI smoke)")
    parser.add_argument("--full", action="store_true",
                        help="scale out to 8 providers")
    parser.add_argument("--providers", default=None,
                        help="comma-separated provider counts "
                             "(overrides the mode's default)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the results as JSON")
    args = parser.parse_args(argv)

    params = QUICK if args.quick else (FULL if args.full else COMMITTED)
    providers = None
    if args.providers:
        providers = [int(part) for part in args.providers.split(",")]
    results = run_scaling(params, providers)
    failures = evaluate_gates(results)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"results written to {args.json}")
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    if not failures:
        print("all scaling gates passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
