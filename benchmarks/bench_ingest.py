"""A-ingest ablation: DataLoader (HDF2HEPnOS) throughput.

Ingest is the only HEPnOS workflow step whose parallelism is bounded by
the file count (paper section III-B).  Measures single-rank ingest rate
and the effect of splitting the file list over ranks.
"""

import pytest

from repro.hepnos import DataLoader
from repro.minimpi import mpirun
from repro.nova import GeneratorConfig, generate_file_set

CONFIG = GeneratorConfig(events_per_subrun=16, subruns_per_run=4)


@pytest.fixture(scope="module")
def file_set(tmp_path_factory):
    return generate_file_set(
        str(tmp_path_factory.mktemp("ingest-files")), num_files=8,
        mean_events_per_file=24, config=CONFIG,
    )


def test_single_file_ingest(benchmark, datastore, file_set):
    counter = {"n": 0}

    def run():
        counter["n"] += 1
        loader = DataLoader(datastore, f"bench/ingest-{counter['n']}")
        return loader.ingest_file(file_set.paths[0])

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\nper-file: {stats.events_created} events, "
          f"{stats.rows} slices, {stats.products_stored} products")


@pytest.mark.parametrize("ranks", [1, 2, 4])
def test_parallel_ingest(benchmark, datastore, file_set, ranks):
    counter = {"n": 0}

    def run():
        counter["n"] += 1
        loader = DataLoader(datastore,
                            f"bench/par-ingest-{ranks}-{counter['n']}")
        if ranks == 1:
            return loader.ingest(file_set.paths)
        return mpirun(lambda comm: loader.ingest(file_set.paths, comm=comm),
                      ranks, timeout=300.0)[0]

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.files == file_set.num_files
    assert stats.events_created == file_set.total_events
    print(f"\n[ranks={ranks}] ingested {stats.files} files / "
          f"{stats.events_created} events")


class TestIngestScalingSim:
    """Simulator: ingest scales with nodes only until the file count
    (and the largest file) binds -- paper section III-B's claim."""

    def test_ingest_file_bound(self, benchmark):
        from repro.perf import IngestModel, LARGE

        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        model = IngestModel()
        dataset = LARGE.scaled(1 / 4)  # the 1929-file base sample
        t8 = model.simulate(8, dataset).throughput
        t32 = model.simulate(32, dataset).throughput
        t128 = model.simulate(128, dataset).throughput
        print(f"\ningest events/s: 8 nodes {t8:,.0f}, 32 nodes {t32:,.0f}, "
              f"128 nodes {t128:,.0f}")
        assert t32 > 2 * t8          # scales while files are plentiful
        assert t128 < 1.1 * t32      # file-bound past that

    def test_lsm_ingest_slower_than_mem(self, benchmark):
        from repro.perf import IngestModel, LARGE

        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        model = IngestModel()
        dataset = LARGE.scaled(1 / 8)
        mem = model.simulate(16, dataset, backend="map").wall_seconds
        lsm = model.simulate(16, dataset, backend="lsm").wall_seconds
        print(f"\ningest wall: mem {mem:.1f}s vs lsm {lsm:.1f}s")
        assert lsm >= mem
